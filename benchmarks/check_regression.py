"""Gate CI on the kernel microbenchmarks' performance trajectory.

Reads one pytest-benchmark JSON artifact (the ``--benchmark-json`` output
of ``bench_microbench_kernels.py``), normalizes each tracked kernel's
best-of-run (``min``) time by the plain float GEMM reference measured in
the *same* run, and compares those machine-independent ratios against the
median of the last few entries in the repo's trajectory file
(``BENCH_kernels.json``).  A tracked kernel whose ratio grew by more than
``--threshold`` (default 25%) fails the build: the limb backend quietly
losing its BLAS speedup is a regression even while every correctness test
stays green.

Normalizing by the in-run float GEMM cancels the host's BLAS speed, CPU
frequency, and noisy-neighbour load — the ratio asks "how many float
matmuls does this field kernel cost?", which is stable across machines
where raw seconds are not.  ``min`` (not mean) is compared because the
best rep is the least contaminated by scheduling noise.

Usage::

    python benchmarks/check_regression.py bench-results/microbench_kernels.json
    python benchmarks/check_regression.py results.json --append  # extend history
    python benchmarks/check_regression.py results.json \
        --autoscale bench-results/autoscale.json  # also gate elastic serving

``--autoscale`` additionally validates the autoscale exhibit's artifact:
its ``extra_info`` ratios (elastic p99 vs static max provisioning, and
elastic shard-seconds vs the static bill) must stay inside the fixed
bounds asserted by ``bench_autoscale.py``.  ``--partition`` does the same
for the layer-partition exhibit (``bench_layer_partition.py``): its
``p99_ratio`` (3-stage pipeline group vs single enclave) must stay at or
below 0.75.  ``--precompute`` gates the offline/online-split exhibit
(``bench_precompute_overlap.py``): ``p99_ratio`` (precompute on vs off)
is bounded from above and ``pool_hit_rate`` from below.

``--append`` adds the new entry to the trajectory file on a passing run
(and seeds the file when it does not exist yet), so the history grows one
point per CI run.  All JSON I/O is strict: non-finite constants are
rejected on read and refused on write.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: Kernel timings gated against the trajectory, keyed by benchmark name.
TRACKED = (
    "test_field_matmul_speed",
    "test_field_matmul_limb_speed_n256",
    "test_forward_encode_speed[limb]",
    "test_forward_decode_speed[limb]",
    "test_backward_decode_many_speed[limb]",
    "test_backward_reference_aggregate_speed",
    "test_coefficient_generation_speed",
    "test_conv2d_batched_gemm_speed",
    "test_quantize_speed",
    "test_dequantize_product_speed",
    "test_forward_encode_hot_path_speed[scratch]",
    "test_forward_decode_hot_path_speed[scratch]",
)

#: The in-run normalizer: a plain float64 GEMM at the same N=256 size.
REFERENCE = "test_float_matmul_reference_speed_n256"

#: Trajectory entries consulted for the baseline median.
HISTORY_WINDOW = 5

#: The autoscale exhibit's name and the bounds its artifact must meet
#: (mirrors the assertions inside ``bench_autoscale.py``).
AUTOSCALE_BENCH = "test_autoscale_matches_static_p99_at_fraction_of_shard_seconds"
AUTOSCALE_BOUNDS = {"p99_ratio": 1.10, "shard_seconds_ratio": 0.70}

#: The layer-partition exhibit's name and bound: p99 at 3 partitions must
#: stay at <= 0.75x the single-enclave baseline (``bench_layer_partition.py``
#: itself asserts the tighter >= 1.5x improvement; the gate keeps slack for
#: noisy CI neighbours).
PARTITION_BENCH = "test_layer_partition_cuts_p99_with_bit_identical_logits"
PARTITION_BOUNDS = {"p99_ratio": 0.75}

#: The precompute-overlap exhibit's name and bounds: its ``p99_ratio``
#: (precompute on vs off) must stay at <= 0.77 (i.e. the offline/online
#: split keeps cutting p99 by >= 1.3x; measured ~0.38) and the mask pool
#: must sustain a >= 0.9 hit rate on the steady-state integrity trace.
PRECOMPUTE_BENCH = "test_precompute_overlap_on_integrity_trace"
PRECOMPUTE_UPPER_BOUNDS = {"p99_ratio": 0.77}
PRECOMPUTE_LOWER_BOUNDS = {"pool_hit_rate": 0.9}


def _reject(constant: str):
    raise ValueError(f"non-strict JSON constant {constant!r}")


def _load_strict(path: Path):
    return json.loads(path.read_text(), parse_constant=_reject)


def extract_ratios(bench_json: dict) -> dict:
    """``{kernel name: min_seconds / reference_min_seconds}`` for one run."""
    mins = {
        b["name"]: float(b["stats"]["min"]) for b in bench_json["benchmarks"]
    }
    if REFERENCE not in mins:
        raise SystemExit(f"reference benchmark {REFERENCE!r} missing from run")
    ref = mins[REFERENCE]
    if not ref > 0:
        raise SystemExit(f"reference time must be > 0, got {ref}")
    missing = [name for name in TRACKED if name not in mins]
    if missing:
        raise SystemExit(f"tracked benchmarks missing from run: {missing}")
    return {name: mins[name] / ref for name in TRACKED}


def baseline_ratios(history: dict) -> dict:
    """Median ratio per kernel over the last ``HISTORY_WINDOW`` entries."""
    window = history.get("entries", [])[-HISTORY_WINDOW:]
    out = {}
    for name in TRACKED:
        samples = [e["ratios"][name] for e in window if name in e.get("ratios", {})]
        if samples:
            out[name] = statistics.median(samples)
    return out


def check(ratios: dict, baseline: dict, threshold: float) -> list[str]:
    """Human-readable failures for kernels slower than baseline allows."""
    failures = []
    for name, ratio in ratios.items():
        base = baseline.get(name)
        if base is None:
            continue  # first sighting: nothing to regress against
        allowed = base * (1.0 + threshold)
        if ratio > allowed:
            failures.append(
                f"{name}: ratio {ratio:.3f} exceeds baseline median"
                f" {base:.3f} by more than {threshold:.0%}"
                f" (allowed {allowed:.3f})"
            )
    return failures


def check_autoscale(path: Path) -> list[str]:
    """Validate the autoscale artifact's ratios against the fixed bounds.

    The elastic-serving exhibit records ``p99_ratio`` (elastic tail vs
    the static max-provisioned deployment) and ``shard_seconds_ratio``
    (elastic bill vs the static bill) in ``extra_info``; either one
    drifting past its bound means autoscaling stopped paying for itself.
    """
    data = _load_strict(path)
    rows = [b for b in data["benchmarks"] if b["name"] == AUTOSCALE_BENCH]
    if not rows:
        return [f"autoscale benchmark {AUTOSCALE_BENCH!r} missing from {path}"]
    info = rows[0].get("extra_info", {})
    failures = []
    for key, bound in AUTOSCALE_BOUNDS.items():
        value = info.get(key)
        if value is None:
            failures.append(f"autoscale artifact lacks extra_info[{key!r}]")
        elif float(value) > bound:
            failures.append(
                f"autoscale {key} {float(value):.3f} exceeds bound {bound:.2f}"
            )
        else:
            print(f"autoscale {key}: {float(value):.3f} (bound {bound:.2f})")
    return failures


def check_partition(path: Path) -> list[str]:
    """Validate the layer-partition artifact's p99 ratio against its bound.

    The exhibit records ``p99_ratio`` (3-stage pipeline-group tail vs the
    single whole-model enclave) in ``extra_info``; drifting past the bound
    means partitioning stopped cutting per-request latency.
    """
    data = _load_strict(path)
    rows = [b for b in data["benchmarks"] if b["name"] == PARTITION_BENCH]
    if not rows:
        return [f"partition benchmark {PARTITION_BENCH!r} missing from {path}"]
    info = rows[0].get("extra_info", {})
    failures = []
    for key, bound in PARTITION_BOUNDS.items():
        value = info.get(key)
        if value is None:
            failures.append(f"partition artifact lacks extra_info[{key!r}]")
        elif float(value) > bound:
            failures.append(
                f"partition {key} {float(value):.3f} exceeds bound {bound:.2f}"
            )
        else:
            print(f"partition {key}: {float(value):.3f} (bound {bound:.2f})")
    return failures


def check_precompute(path: Path) -> list[str]:
    """Validate the precompute-overlap artifact against both bound kinds.

    The offline/online-split exhibit records ``p99_ratio`` (precompute on
    vs off, lower is better — gated from above) and ``pool_hit_rate``
    (steady-state mask-pool hits, higher is better — gated from below) in
    ``extra_info``; either drifting past its bound means the split stopped
    hiding offline work in the enclave's idle gaps.
    """
    data = _load_strict(path)
    rows = [b for b in data["benchmarks"] if b["name"] == PRECOMPUTE_BENCH]
    if not rows:
        return [f"precompute benchmark {PRECOMPUTE_BENCH!r} missing from {path}"]
    info = rows[0].get("extra_info", {})
    failures = []
    for bounds, too_far, side in (
        (PRECOMPUTE_UPPER_BOUNDS, lambda v, b: v > b, "exceeds upper"),
        (PRECOMPUTE_LOWER_BOUNDS, lambda v, b: v < b, "falls below lower"),
    ):
        for key, bound in bounds.items():
            value = info.get(key)
            if value is None:
                failures.append(f"precompute artifact lacks extra_info[{key!r}]")
            elif too_far(float(value), bound):
                failures.append(
                    f"precompute {key} {float(value):.3f} {side} bound {bound:.2f}"
                )
            else:
                print(f"precompute {key}: {float(value):.3f} (bound {bound:.2f})")
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--history",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernels.json",
        help="trajectory file (default: repo-root BENCH_kernels.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max allowed slowdown vs the baseline median (default 0.25)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append this run to the trajectory file when the gate passes",
    )
    parser.add_argument(
        "--autoscale",
        type=Path,
        default=None,
        metavar="PATH",
        help="also gate the autoscale exhibit's JSON artifact"
             " (p99_ratio / shard_seconds_ratio bounds)",
    )
    parser.add_argument(
        "--partition",
        type=Path,
        default=None,
        metavar="PATH",
        help="also gate the layer-partition exhibit's JSON artifact"
             " (p99_ratio at 3 partitions vs the single-enclave baseline)",
    )
    parser.add_argument(
        "--precompute",
        type=Path,
        default=None,
        metavar="PATH",
        help="also gate the precompute-overlap exhibit's JSON artifact"
             " (p99_ratio upper bound and pool_hit_rate lower bound)",
    )
    args = parser.parse_args(argv)

    bench_json = _load_strict(args.results)
    ratios = extract_ratios(bench_json)
    history = (
        _load_strict(args.history)
        if args.history.exists()
        else {"description": "kernel microbench trajectory (see"
              " benchmarks/check_regression.py)", "entries": []}
    )
    baseline = baseline_ratios(history)

    for name in TRACKED:
        base_txt = f"{baseline[name]:.3f}" if name in baseline else "none"
        print(f"{name}: ratio {ratios[name]:.3f} (baseline median {base_txt})")

    failures = check(ratios, baseline, args.threshold)
    if args.autoscale is not None:
        failures += check_autoscale(args.autoscale)
    if args.partition is not None:
        failures += check_partition(args.partition)
    if args.precompute is not None:
        failures += check_precompute(args.precompute)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1

    if args.append:
        history["entries"].append(
            {
                "datetime": bench_json.get("datetime"),
                "reference_seconds": float(
                    next(
                        b["stats"]["min"]
                        for b in bench_json["benchmarks"]
                        if b["name"] == REFERENCE
                    )
                ),
                "ratios": ratios,
            }
        )
        args.history.write_text(
            json.dumps(history, indent=2, allow_nan=False) + "\n"
        )
        print(f"appended entry #{len(history['entries'])} to {args.history}")
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
