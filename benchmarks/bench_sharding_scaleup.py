"""Multi-enclave sharding scale-up: parallel timelines vs one enclave clock.

DarKnight's enclave serializes every encode/decode on one timeline; once
the staged pipeline saturates it, the only way forward is *out*: partition
tenants across several enclave + GPU shards behind one scheduler
(``DarKnightConfig.num_shards``).  This benchmark drives an identical
enclave-bound trace — a tiny dense model where per-stage enclave overhead
dominates GPU MACs, i.e. the regime where pipelining alone cannot help —
through 1, 2, and 4 shards and compares simulated serving throughput.

Correctness rides along: per-sample normalization makes a request's
logits independent of batch composition, so every shard count must serve
bit-identical responses on the same trace (asserted per request).

Acceptance: >= 2.5x simulated throughput at 4 shards vs 1, monotone
scaling 1 -> 2 -> 4, and zero decode/integrity errors at every count.
"""

import time

import numpy as np
from conftest import show

from repro.cli import build_serving_model
from repro.reporting import render_table
from repro.runtime import DarKnightConfig
from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace

INPUT_SHAPE = (16,)
K = 4
N_TENANTS = 16
SHARD_COUNTS = (1, 2, 4)

#: Offered load: a request every 20 simulated microseconds, far above one
#: enclave timeline's service rate — the sharding win needs saturation.
MEAN_INTERARRIVAL = 2e-5
MAX_BATCH_WAIT = 2e-3


def _run(num_shards: int, trace, seed: int = 0):
    """Serve one trace over ``num_shards`` shards; returns (report, wall)."""
    config = ServingConfig(
        darknight=DarKnightConfig(
            virtual_batch_size=K, seed=seed, num_shards=num_shards
        ),
        max_batch_wait=MAX_BATCH_WAIT,
        queue_capacity=2 * len(trace),
    )
    network, input_shape = build_serving_model("tiny", seed=seed)
    assert input_shape == INPUT_SHAPE
    server = PrivateInferenceServer(network, config)
    start = time.perf_counter()
    report = server.serve_trace(trace)
    wall = time.perf_counter() - start
    return report, wall


def test_sharding_scales_enclave_bound_throughput(benchmark, capsys, quick):
    """>= 2.5x simulated throughput at 4 shards, bit-identical logits."""
    n = 120 if quick else 400
    trace = synthetic_trace(
        n, INPUT_SHAPE, n_tenants=N_TENANTS,
        mean_interarrival=MEAN_INTERARRIVAL, seed=3,
    )

    def sweep():
        return {s: _run(s, trace) for s in SHARD_COUNTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    throughput = {}
    logits = {}
    rows = []
    base = None
    for num_shards in SHARD_COUNTS:
        report, wall = results[num_shards]
        assert len(report.completed) == n, (
            f"{num_shards} shards completed {len(report.completed)}/{n}"
        )
        assert report.metrics.decode_errors == 0
        assert report.metrics.integrity_failures == 0
        assert report.metrics.shed == 0
        throughput[num_shards] = report.metrics.throughput
        logits[num_shards] = {o.request_id: o.logits for o in report.completed}
        base = base or throughput[num_shards]
        rows.append(
            [
                f"{num_shards} shard(s)",
                report.metrics.batches,
                f"{report.metrics.batch_fill_ratio:.2f}",
                f"{throughput[num_shards]:.0f}",
                f"{report.metrics.latency_percentile(99) * 1e3:.2f}",
                f"{throughput[num_shards] / base:.2f}x",
                f"{n / wall:.0f}",
            ]
        )

    # All shard counts must agree to the last bit on every response.
    for num_shards in SHARD_COUNTS[1:]:
        for rid, reference in logits[SHARD_COUNTS[0]].items():
            assert np.array_equal(reference, logits[num_shards][rid]), (
                f"request {rid} differs between 1 and {num_shards} shards"
            )

    speedup = throughput[4] / throughput[1]
    show(
        capsys,
        render_table(
            [
                "deployment",
                "batches",
                "fill",
                "sim req/s",
                "p99 ms",
                "speedup",
                "wall req/s",
            ],
            rows,
            title=(
                "Multi-enclave sharding scale-up — enclave-bound trace,"
                f" {n} requests, {N_TENANTS} tenants"
                f" (4-shard speedup {speedup:.2f}x simulated,"
                " logits bit-identical)"
            ),
        ),
    )

    assert throughput[2] > throughput[1]
    assert throughput[4] > throughput[2]
    assert speedup >= 2.5, f"4-shard speedup only {speedup:.2f}x"


def test_failover_preserves_throughput_and_results(benchmark, capsys, quick):
    """Killing one of three shards mid-run loses no responses and keeps
    throughput above the single-shard baseline."""
    n = 60 if quick else 180
    trace = synthetic_trace(
        n, INPUT_SHAPE, n_tenants=N_TENANTS,
        mean_interarrival=MEAN_INTERARRIVAL, seed=9,
    )

    def run_pair():
        single, _ = _run(1, trace)
        config = ServingConfig(
            darknight=DarKnightConfig(virtual_batch_size=K, seed=0, num_shards=3),
            max_batch_wait=MAX_BATCH_WAIT,
            queue_capacity=2 * n,
        )
        network, _ = build_serving_model("tiny", seed=0)
        server = PrivateInferenceServer(network, config)
        server.shards[1].fail_after(2)
        return single, server.serve_trace(trace)

    single, degraded = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert len(degraded.completed) == n
    assert degraded.failovers == 1
    assert degraded.migrations >= 1
    single_logits = {o.request_id: o.logits for o in single.completed}
    for outcome in degraded.completed:
        assert np.array_equal(outcome.logits, single_logits[outcome.request_id])
    ratio = degraded.metrics.throughput / single.metrics.throughput
    show(
        capsys,
        "Shard failover under load — 3 shards, one killed mid-window: "
        f"{n}/{n} responses, {degraded.migrations} sessions re-attested, "
        f"{ratio:.2f}x the single-shard throughput on the surviving shards",
    )
    assert ratio >= 1.0, f"degraded deployment slower than one shard ({ratio:.2f}x)"
