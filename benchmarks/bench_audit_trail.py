"""Verifiable audit trail: commit overhead, provability, tamper exhibit.

The audit trail turns each flush window's integrity checks into a
durable commitment: leaves (canonical inputs + decoded-output digests)
under a Merkle root, roots chained per shard, inclusion proofs
verifiable offline against the chain head.  This benchmark prices that
on the paper's serving configuration and demonstrates the detection
properties end to end.

Acceptance (asserted below):

* on the 1k-request integrity trace (K=4, 2 shards, redundant-share
  integrity on), committing every window costs <5% of the audited run's
  host wall time, and served logits are bit-identical with the trail
  disabled;
* every completed request yields an inclusion proof with an O(log n)
  path that verifies offline against its shard's chain head — and
  against no other shard's head;
* flipping one committed byte breaks ``verify_chain``; flipping the
  published head breaks every proof; replay reproduces every window's
  committed output digests bit-exactly.
"""

import json
import math
import time

import numpy as np
from conftest import show

from repro.audit import (
    AuditConfig,
    AuditLog,
    load_manifest,
    manifest_config,
    prove,
    replay_window,
    verify_proof,
)
from repro.cli import build_serving_model
from repro.reporting import render_table
from repro.runtime import DarKnightConfig
from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace

INPUT_SHAPE = (16,)
K = 4
NUM_SHARDS = 2
#: Host-side commit budget: the audit trail may spend at most this
#: fraction of the audited run's wall clock building + chaining windows.
COMMIT_BUDGET = 0.05


def _trace(n: int):
    return synthetic_trace(
        n, INPUT_SHAPE, n_tenants=6, mean_interarrival=1e-4, seed=0
    )


def _server(n: int, audit: AuditConfig | None):
    dk = DarKnightConfig(
        virtual_batch_size=K, seed=0, num_shards=NUM_SHARDS, integrity=True
    )
    network, input_shape = build_serving_model("tiny", seed=0)
    assert input_shape == INPUT_SHAPE
    return PrivateInferenceServer(
        network,
        ServingConfig(darknight=dk, queue_capacity=2 * n, audit=audit),
    )


def test_commit_overhead_and_full_provability(benchmark, capsys, quick):
    """<5% host-side commit cost; every request provable in O(log n)."""
    n = 200 if quick else 1000
    trace = _trace(n)

    def run_both():
        t0 = time.perf_counter()
        plain_report = _server(n, audit=None).serve_trace(trace)
        plain_wall = time.perf_counter() - t0
        audited = _server(n, audit=AuditConfig())
        t0 = time.perf_counter()
        audited_report = audited.serve_trace(trace)
        audited_wall = time.perf_counter() - t0
        return plain_report, plain_wall, audited, audited_report, audited_wall

    plain_report, plain_wall, audited, report, audited_wall = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    trail = audited.audit
    commit_frac = trail.commit_seconds / audited_wall

    # Disabled trail is bit-identical: same logits for every request.
    audited_logits = {o.request_id: o.logits for o in report.completed}
    assert len(plain_report.completed) == len(report.completed) == n
    for outcome in plain_report.completed:
        assert np.array_equal(outcome.logits, audited_logits[outcome.request_id])

    # Every completed request proves against its shard's chain head,
    # with a Merkle path logarithmic in its window's width.
    roots = trail.chain_roots()
    proved = 0
    max_path = 0
    for outcome in report.completed:
        for sid, log in trail.logs.items():
            try:
                proof = prove(log, outcome.request_id)
            except Exception:
                continue
            assert verify_proof(proof, roots[sid])
            width = proof.window_meta["n_requests"]
            bound = max(1, math.ceil(math.log2(width))) if width > 1 else 0
            assert len(proof.merkle.path) <= bound
            max_path = max(max_path, len(proof.merkle.path))
            proved += 1
    assert proved == n

    show(
        capsys,
        render_table(
            ["metric", "value"],
            [
                ["requests", n],
                ["windows committed", trail.windows_committed],
                ["leaves committed", trail.leaves_committed],
                ["log bytes", f"{trail.bytes_written:,}"],
                ["commit time ms", f"{trail.commit_seconds * 1e3:.1f}"],
                ["commit share of wall", f"{commit_frac * 100:.2f}%"],
                ["wall ratio audited/plain", f"{audited_wall / plain_wall:.3f}"],
                ["max proof path", max_path],
                ["proofs verified", proved],
            ],
            title=(
                f"Audit trail — integrity trace (K={K},"
                f" {NUM_SHARDS} shards, budget {COMMIT_BUDGET:.0%})"
            ),
        ),
    )
    assert trail.leaves_committed == n
    assert trail.verify() == trail.windows_committed
    assert commit_frac < COMMIT_BUDGET, (
        f"audit commits consumed {commit_frac:.1%} of the audited wall"
        f" (budget {COMMIT_BUDGET:.0%})"
    )


def test_tamper_detection_exhibit(capsys, quick, tmp_path):
    """One flipped byte anywhere — leaf, root, or head — is detected."""
    n = 48 if quick else 192
    server = _server(n, audit=AuditConfig(log_dir=str(tmp_path), model="tiny"))
    report = server.serve_trace(_trace(n))
    assert len(report.completed) == n
    head = server.audit.logs[0].chain_root
    proof = prove(server.audit.logs[0], server.audit.logs[0].entries[0]["leaves"][0]["request_id"])
    rows = []

    # 1. Pristine log: chain walks, proof verifies.
    clean = AuditLog.load(tmp_path / "shard0.audit.jsonl")
    rows.append(["pristine chain", f"{clean.verify_chain()} windows OK"])
    assert verify_proof(proof, head)
    rows.append(["pristine proof", "verifies"])

    # 2. Flip one committed input byte on disk: verify_chain detects it.
    path = tmp_path / "shard0.audit.jsonl"
    lines = path.read_text().splitlines()
    entry = json.loads(lines[0])
    data = entry["leaves"][0]["input"]["data"]
    entry["leaves"][0]["input"]["data"] = ("B" if data[0] == "A" else "A") + data[1:]
    lines[0] = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")
    try:
        AuditLog.load(path)
        detected = False
    except Exception as exc:
        detected = "Merkle" in str(exc) or "root" in str(exc)
    assert detected, "strict load must reject the flipped byte"
    # Recovery keeps nothing: the flip is in window 0, so every later
    # chained window is orphaned with it.
    recovered, dropped = AuditLog.recover(path, shard_id=0)
    assert recovered.n_windows == 0 and dropped == len(lines)
    rows.append(["flipped input byte", "chain walk rejects window 0"])

    # 3. A forged head invalidates every honest proof.
    forged = head[:1] + ("0" if head[1] != "0" else "1") + head[2:]
    assert not verify_proof(proof, forged)
    rows.append(["forged chain head", "all proofs fail"])

    show(capsys, render_table(["tamper scenario", "outcome"], rows,
                              title="Audit trail — tamper detection"))


def test_replay_reproduces_every_committed_window(capsys, quick):
    """Deterministic replay: recomputed output digests match bit-exactly."""
    n = 48 if quick else 192
    server = _server(n, audit=AuditConfig())
    report = server.serve_trace(_trace(n))
    assert len(report.completed) == n
    network, _ = build_serving_model("tiny", seed=0)
    replayed = matched_requests = 0
    for log in server.audit.logs.values():
        for entry in log.entries:
            if any(leaf["output_digest"] is None for leaf in entry["leaves"]):
                continue
            result = replay_window(entry, network, server.darknight)
            assert result.matched
            replayed += 1
            matched_requests += result.n_requests
    assert replayed == server.audit.windows_committed
    assert matched_requests == n
    show(
        capsys,
        render_table(
            ["metric", "value"],
            [["windows replayed", replayed], ["requests re-verified", matched_requests]],
            title="Audit trail — deterministic window replay",
        ),
    )


def test_manifest_pins_the_effective_config(tmp_path):
    """The persisted manifest reprovisions the exact serving posture."""
    n = 24
    server = _server(n, audit=AuditConfig(log_dir=str(tmp_path), model="tiny"))
    server.serve_trace(_trace(n))
    manifest = load_manifest(tmp_path)
    effective = manifest_config(manifest)
    assert effective == server.darknight
    assert effective.per_sample_normalization
    assert not effective.fresh_coefficients
