"""Ablation: central DP on top of DarKnight — utility vs privacy budget.

The paper proposes layering central differential privacy over DarKnight for
model privacy (Section 3).  This ablation trains the Mini model with the
enclave privatising every released aggregate update at several noise
multipliers, reporting final accuracy against the (ε, δ) budget — the
classic utility/privacy frontier, here riding on the masked pipeline.
"""

import numpy as np
from conftest import show

from repro.data import cifar_like
from repro.models import build_mini_vgg
from repro.nn import PlainBackend
from repro.reporting import render_table
from repro.runtime import DpConfig, GradientPrivatizer, Trainer


class _DpTrainer(Trainer):
    """Trainer whose optimiser step consumes privatised gradients."""

    def __init__(self, network, privatizer, **kwargs):
        super().__init__(network, **kwargs)
        self.privatizer = privatizer

    def train_step(self, x, y):
        logits = self.network.forward(x, self.backend, training=True)
        loss_value = self.loss.forward(logits, y)
        self.network.backward(self.loss.backward(), self.backend)
        raw = {}
        for layer, name, _ in self.network.parameters():
            if name in layer.grads:
                raw[f"{layer.name}/{name}"] = layer.grads[name]
        released = self.privatizer.privatize_named(raw)
        for layer, name, _ in self.network.parameters():
            key = f"{layer.name}/{name}"
            if key in released:
                layer.grads[name] = released[key]
        self.optimizer.step()
        self.optimizer.zero_grad()
        self.backend.end_batch()
        return loss_value


def _sweep():
    data = cifar_like(n_train=128, n_test=64, seed=0, size=8)
    rows = []
    for sigma in (None, 0.3, 1.0, 3.0):
        rng = np.random.default_rng(0)
        net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=rng, width=8)
        if sigma is None:
            trainer = Trainer(net, PlainBackend(), lr=0.08, momentum=0.9)
            epsilon = float("inf")
        else:
            privatizer = GradientPrivatizer(
                DpConfig(clip_norm=1.0, noise_multiplier=sigma),
                np.random.default_rng(1),
            )
            trainer = _DpTrainer(
                net, privatizer, backend=PlainBackend(), lr=0.08, momentum=0.9
            )
        history = trainer.fit(
            data.x_train, data.y_train, epochs=3, batch_size=16,
            val_x=data.x_test, val_y=data.y_test, shuffle_seed=0,
        )
        if sigma is not None:
            epsilon = privatizer.ledger.epsilon_basic
        rows.append(
            {
                "sigma": sigma,
                "epsilon": epsilon,
                "accuracy": history.val_accuracy[-1],
            }
        )
    return rows


def test_ablation_dp_noise(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    show(
        capsys,
        render_table(
            ["noise multiplier σ", "ε (basic comp.)", "final val accuracy"],
            [
                [
                    "none (no DP)" if r["sigma"] is None else f"{r['sigma']:.1f}",
                    "∞" if r["epsilon"] == float("inf") else f"{r['epsilon']:.1f}",
                    f"{r['accuracy']:.2f}",
                ]
                for r in rows
            ],
            title="Ablation — central DP on released updates (MiniVGG, 3 epochs)",
        ),
    )
    by_sigma = {r["sigma"]: r for r in rows}
    # No-DP ceiling learns; heavy noise destroys utility; mild noise sits between.
    assert by_sigma[None]["accuracy"] > 0.4
    assert by_sigma[3.0]["accuracy"] < by_sigma[None]["accuracy"]
    # Privacy budget shrinks (stronger guarantee) as sigma grows.
    assert by_sigma[3.0]["epsilon"] < by_sigma[1.0]["epsilon"] < by_sigma[0.3]["epsilon"]
