"""Cross-validation: functional ledger counts vs cost-model traffic shapes.

The timing exhibits come from the analytical cost model; the accuracy
exhibit from the functional runtime.  This benchmark ties them together: it
runs one real masked training step on a Mini model and checks that the
*measured* ledgers (GPU MACs, link bytes, enclave encode/decode bytes)
scale with K and with integrity exactly the way the cost model says they
should.
"""

import numpy as np
from conftest import show

from repro.models import build_mini_vgg
from repro.reporting import render_table
from repro.runtime import DarKnightBackend, DarKnightConfig, Trainer


def _measure(k: int, integrity: bool = False) -> dict:
    rng = np.random.default_rng(0)
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=4, rng=rng, width=8)
    backend = DarKnightBackend(
        DarKnightConfig(virtual_batch_size=k, integrity=integrity, seed=0)
    )
    trainer = Trainer(net, backend, lr=0.01)
    x = rng.normal(size=(4, 3, 8, 8))
    y = rng.integers(0, 4, 4)
    trainer.train_step(x, y)
    ledger = backend.enclave.ledger
    return {
        "k": k,
        "integrity": integrity,
        "gpu_macs": backend.cluster.total_mac_ops(),
        "link_bytes": backend.link.total_bytes,
        "encode_bytes": ledger.op_bytes.get("encode_forward", 0),
        "decode_bytes": ledger.op_bytes.get("decode_forward", 0),
    }


def _collect():
    return [_measure(1), _measure(2), _measure(4), _measure(2, integrity=True)]


def test_functional_counters(benchmark, capsys):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    show(
        capsys,
        render_table(
            ["K", "integrity", "GPU MACs", "link bytes", "encode bytes", "decode bytes"],
            [
                [r["k"], r["integrity"], f"{r['gpu_macs']:,}", f"{r['link_bytes']:,}",
                 f"{r['encode_bytes']:,}", f"{r['decode_bytes']:,}"]
                for r in rows
            ],
            title="Functional ledger counts, one training step (batch 4, MiniVGG)",
        ),
    )
    by_k = {(r["k"], r["integrity"]): r for r in rows}
    # Larger K -> fewer shares per sample -> less aggregate GPU work and
    # traffic (the S/K amortisation the cost model builds on).
    assert by_k[(1, False)]["gpu_macs"] > by_k[(2, False)]["gpu_macs"] > by_k[(4, False)]["gpu_macs"]
    assert by_k[(1, False)]["link_bytes"] > by_k[(2, False)]["link_bytes"]
    assert by_k[(1, False)]["encode_bytes"] > by_k[(4, False)]["encode_bytes"]
    # Integrity adds the redundant share's work on top of the same K.
    assert by_k[(2, True)]["gpu_macs"] > by_k[(2, False)]["gpu_macs"]
    assert by_k[(2, True)]["link_bytes"] > by_k[(2, False)]["link_bytes"]
