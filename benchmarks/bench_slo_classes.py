"""End-to-end SLO classes: premium p99 held under mixed-class load.

A premium tenant sharing a deployment with bursty best-effort traffic
used to inherit the global flush deadline and the priority-blind shed
policy: its tail latency was whatever the backlog allowed.  With
:mod:`repro.serving.slo` the premium class's budget drives the flush
deadline (minimum remaining budget among queued requests), admission
evicts best-effort work instead of shedding premium arrivals, and the
deadline-aware stage ranker spends the enclave on premium windows first.

Acceptance (asserted below):

* mixed premium/best-effort trace — premium p99 meets its budget under
  the SLO server while the SLO-free server misses it, at equal aggregate
  completions (no served request lost to the feature);
* under backpressure, premium arrivals evict best-effort backlog —
  premium sheds zero while the shed/evicted split is reported;
* an all-default SLO policy (and the deadline-aware ranker fed
  budget-less jobs) is bit-identical to the SLO-free server — the
  default path is untouched.
"""

import numpy as np
from conftest import show

from repro.cli import build_serving_model
from repro.reporting import render_table
from repro.runtime import DarKnightConfig
from repro.serving import (
    PrivateInferenceServer,
    ServingConfig,
    SloClass,
    SloPolicy,
    TraceRequest,
    bursty_trace,
    synthetic_trace,
)

INPUT_SHAPE = (16,)
K = 4
MAX_WAIT = 0.02
PREMIUM_BUDGET = 0.008  # 8 ms end-to-end


def _slo_policy() -> SloPolicy:
    return SloPolicy(
        classes={
            "premium": SloClass(
                name="premium", latency_budget=PREMIUM_BUDGET, priority=1
            )
        },
        assignments={"vip": "premium"},
    )


def _mixed_trace(n_best_effort: int, n_premium: int, seed: int = 0):
    """Bursty best-effort traffic with sparse premium arrivals woven in.

    Premium requests arrive alone between bursts — the regime where a
    global deadline parks them behind the full ``MAX_WAIT`` and a
    size-triggered flush never rescues them.
    """
    rng = np.random.default_rng(seed)
    best_effort = bursty_trace(
        n_best_effort,
        INPUT_SHAPE,
        n_tenants=3,
        burst_size=10,
        intra_gap=2e-4,
        burst_gap=4e-2,
        seed=seed,
    )
    span = best_effort[-1].time
    premium = [
        TraceRequest(
            time=float((i + 0.5) * span / n_premium),
            tenant="vip",
            x=rng.normal(size=INPUT_SHAPE),
        )
        for i in range(n_premium)
    ]
    return sorted(best_effort + premium, key=lambda r: r.time)


def _server(slo, n_requests: int, **dk_kwargs):
    dk = DarKnightConfig(virtual_batch_size=K, seed=0, **dk_kwargs)
    config = ServingConfig(
        darknight=dk,
        max_batch_wait=MAX_WAIT,
        queue_capacity=2 * n_requests,
        slo=slo,
    )
    network, input_shape = build_serving_model("tiny", seed=0)
    assert input_shape == INPUT_SHAPE
    return PrivateInferenceServer(network, config)


def test_premium_p99_meets_budget_under_mixed_load(benchmark, capsys, quick):
    """Premium p99 within budget at equal aggregate completions."""
    n_best, n_vip = (90, 9) if quick else (240, 24)
    n = n_best + n_vip
    trace = _mixed_trace(n_best, n_vip)

    def run_both():
        slo_free = _server(slo=None, n_requests=n).serve_trace(trace)
        slo_on = _server(
            slo=_slo_policy(), n_requests=n, stage_ranker="deadline"
        ).serve_trace(trace)
        return slo_free, slo_on

    slo_free, slo_on = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def vip_p99(report):
        latencies = [o.latency for o in report.completed if o.tenant == "vip"]
        return float(np.percentile(latencies, 99))

    rows = [
        [
            name,
            f"{vip_p99(report) * 1e3:.2f}",
            f"{report.metrics.latency_percentile(99) * 1e3:.2f}",
            len(report.completed),
            f"{report.metrics.throughput:.1f}",
            "n/a" if snap is None else f"{snap:.3f}",
        ]
        for name, report, snap in [
            ("slo-free", slo_free, None),
            ("slo classes", slo_on, slo_on.metrics.slo_attainment("premium")),
        ]
    ]
    show(
        capsys,
        render_table(
            [
                "server", "premium p99 ms", "overall p99 ms", "completed",
                "req/s", "premium attainment",
            ],
            rows,
            title=(
                "SLO classes — premium budget"
                f" {PREMIUM_BUDGET * 1e3:.0f}ms vs global deadline"
                f" {MAX_WAIT * 1e3:.0f}ms (K={K}, mixed bursty trace)"
            ),
        ),
    )

    # Equal aggregate service: every request completes on both servers.
    assert len(slo_free.completed) == len(slo_on.completed) == n
    assert slo_on.metrics.decode_errors == 0
    assert slo_on.metrics.integrity_failures == 0
    # The SLO server holds the premium tail inside its contract; the
    # SLO-free server (premium waits the global deadline) cannot.
    assert vip_p99(slo_on) <= PREMIUM_BUDGET, (
        f"premium p99 {vip_p99(slo_on) * 1e3:.2f}ms blew the"
        f" {PREMIUM_BUDGET * 1e3:.0f}ms budget"
    )
    assert vip_p99(slo_free) > PREMIUM_BUDGET
    assert slo_on.metrics.slo_attainment("premium") == 1.0
    # Aggregate throughput stays in the same neighbourhood: premium-
    # driven early flushes may split a few batches but serve everything.
    assert slo_on.metrics.throughput >= 0.8 * slo_free.metrics.throughput


def test_eviction_shields_premium_from_backpressure(capsys, quick):
    """At capacity, premium arrivals evict best-effort backlog: premium
    sheds zero, and the admission/eviction split is reported."""
    n_best, n_vip = (40, 8) if quick else (80, 16)
    rng = np.random.default_rng(7)
    # One dense best-effort wall at t~0 swamps a tiny queue, then premium
    # arrivals land while it is still full.
    trace = [
        TraceRequest(time=1e-5 * i, tenant=f"tenant{i % 3}", x=rng.normal(size=16))
        for i in range(n_best)
    ]
    trace += [
        TraceRequest(time=1e-5 * n_best + 1e-6 * i, tenant="vip", x=rng.normal(size=16))
        for i in range(n_vip)
    ]
    capacity = n_best // 2
    network, _ = build_serving_model("tiny", seed=0)
    server = PrivateInferenceServer(
        network,
        ServingConfig(
            # K > capacity: the wall cannot size-flush its way out of the
            # queue, so the premium arrivals contend with *queued* backlog
            # — the admission-eviction scenario, isolated.
            darknight=DarKnightConfig(virtual_batch_size=capacity + n_vip, seed=0),
            max_batch_wait=MAX_WAIT,
            queue_capacity=capacity,
            slo=_slo_policy(),
        ),
    )
    report = server.serve_trace(trace)
    snap = report.metrics.snapshot()
    vip_outcomes = [o for o in report.outcomes if o.tenant == "vip"]
    assert len(vip_outcomes) == n_vip
    assert all(o.ok for o in vip_outcomes), "premium must never shed"
    assert snap["shed_evicted"] >= n_vip // 2, snap
    assert snap["shed_at_admission"] > 0
    assert snap["shed"] == snap["shed_at_admission"] + snap["shed_evicted"]
    assert snap["shed"] + snap["completed"] == n_best + n_vip
    show(
        capsys,
        f"backpressure split at capacity {capacity}: "
        f"{snap['completed']} served, {snap['shed_at_admission']} shed at"
        f" admission, {snap['shed_evicted']} evicted by class"
        f" ({n_vip}/{n_vip} premium served)",
    )


def test_default_slo_and_deadline_ranker_are_bit_identical(quick):
    """The default class is today's behavior: an all-default policy —
    even with the deadline-aware ranker scheduling its (budget-less)
    windows — serves bit-identical outcomes to the SLO-free server."""
    n = 48 if quick else 96
    trace = synthetic_trace(n, INPUT_SHAPE, n_tenants=4, seed=5)
    baseline = _server(slo=None, n_requests=n).serve_trace(trace)
    defaulted = _server(slo=SloPolicy(), n_requests=n).serve_trace(trace)
    ranked = _server(
        slo=SloPolicy(), n_requests=n, stage_ranker="deadline", pipeline_depth=3
    ).serve_trace(trace)
    deep_baseline = _server(
        slo=None, n_requests=n, pipeline_depth=3
    ).serve_trace(trace)

    def outcomes(report):
        return {o.request_id: o for o in report.completed}

    a = outcomes(baseline)
    for report in (defaulted,):
        b = outcomes(report)
        assert sorted(a) == sorted(b) == list(range(n))
        for rid in a:
            assert np.array_equal(a[rid].logits, b[rid].logits)
            assert a[rid].completion_time == b[rid].completion_time
            assert a[rid].batch_id == b[rid].batch_id
    # Deadline-aware ranking of budget-less jobs: identical values AND
    # identical schedule to the default ranker at the same depth.
    c, d = outcomes(deep_baseline), outcomes(ranked)
    assert sorted(c) == sorted(d) == list(range(n))
    for rid in c:
        assert np.array_equal(c[rid].logits, d[rid].logits)
        assert c[rid].completion_time == d[rid].completion_time
