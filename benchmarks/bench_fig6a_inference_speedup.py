"""Fig. 6(a): inference speedup over SGX for five configurations.

Paper (VGG16): Slalom ~11.5x, DarKnight(4) ~15x (a ~30% edge over Slalom),
Slalom+Integrity ~9x, DarKnight(3)+Integrity ~13x (1.45x over
Slalom+Integrity).  Shape: DarKnight beats Slalom with and without
integrity; integrity costs both systems; MobileNetV1 gains are smaller.
"""

from conftest import show

from repro.perf import fig6a_series
from repro.reporting import render_table

CONFIGS = ["SGX", "Slalom", "DarKnight(4)", "Slalom+Integrity", "DarKnight(3)+Integrity"]


def test_fig6a_inference_speedup(benchmark, capsys):
    series = benchmark(fig6a_series)
    rendered = render_table(
        ["Model"] + CONFIGS,
        [
            [model] + [f"{series[model][c]:.1f}x" for c in CONFIGS]
            for model in series
        ],
        title="Fig 6a — Inference speedup relative to SGX-only",
    )
    show(capsys, rendered)
    for model, v in series.items():
        assert v["DarKnight(4)"] > v["Slalom"], model
        assert v["Slalom"] > v["Slalom+Integrity"], model
        assert v["DarKnight(3)+Integrity"] > v["Slalom+Integrity"], model
        assert v["DarKnight(4)"] > v["DarKnight(3)+Integrity"], model
    # VGG16 magnitudes in the paper's ballpark.
    assert 8 < series["VGG16"]["DarKnight(4)"] < 35
    assert 4 < series["VGG16"]["Slalom"] < 20
    # MobileNetV1 gains are smaller than VGG16's across the board.
    for c in CONFIGS[1:]:
        assert series["MobileNetV1"][c] < series["VGG16"][c]
