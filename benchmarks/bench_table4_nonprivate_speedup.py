"""Table 4: non-private 3-GPU training speedup over DarKnight and SGX-only.

Paper: over DarKnight 23.93x / 41.01x / 27.51x; over SGX 273.26x / 216.62x /
80.31x (VGG16 / ResNet50 / MobileNetV2).  Shape: the privacy gap is tens-of-x,
the TEE-only gap is two orders of magnitude, and MobileNet has the smallest
SGX gap (least linear work to accelerate).
"""

from conftest import show

from repro.perf import table4_rows
from repro.reporting import render_table

PAPER = {
    "VGG16": (23.93, 273.26),
    "ResNet50": (41.01, 216.62),
    "MobileNetV2": (27.51, 80.31),
}


def test_table4_nonprivate_speedup(benchmark, capsys):
    rows = benchmark(table4_rows)
    rendered = render_table(
        ["Model", "over DarKnight", "(paper)", "over SGX-only", "(paper)"],
        [
            [
                r["model"],
                f"{r['speedup_over_darknight']:.1f}x",
                f"{PAPER[r['model']][0]:.1f}x",
                f"{r['speedup_over_sgx']:.1f}x",
                f"{PAPER[r['model']][1]:.1f}x",
            ]
            for r in rows
        ],
        title="Table 4 — Non-private 3-GPU training speedup (ImageNet)",
    )
    show(capsys, rendered)
    by_model = {r["model"]: r for r in rows}
    for model, row in by_model.items():
        assert 10 < row["speedup_over_darknight"] < 100
        assert row["speedup_over_sgx"] > 50
    # MobileNet shows the smallest gap over SGX (paper's 80x vs 273x).
    assert (
        by_model["MobileNetV2"]["speedup_over_sgx"]
        < by_model["ResNet50"]["speedup_over_sgx"]
        < by_model["VGG16"]["speedup_over_sgx"]
    )
