"""Serving throughput: virtual-batch coalescing vs per-request dispatch.

The paper amortizes enclave encode/decode over ``K`` inputs; the serving
subsystem applies that to concurrent traffic.  Per-request dispatch pads
every lone sample to a full ``K``-slot encoding, so coalescing recovers
up to a ``K``x throughput win at equal privacy/integrity settings.  Both
modes are measured on identical traces in simulated *and* wall-clock
time, and a 1,000-request trace must complete with integrity
verification on and zero decode errors.
"""

import time

import numpy as np
from conftest import show

from repro.cli import build_serving_model
from repro.nn import PlainBackend
from repro.reporting import render_table
from repro.runtime import DarKnightConfig
from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace

INPUT_SHAPE = (16,)
K = 4


def _run(coalesce: bool, n_requests: int, integrity: bool, seed: int = 0):
    """Serve one trace; returns (report, wall_seconds)."""
    config = ServingConfig(
        darknight=DarKnightConfig(
            virtual_batch_size=K, integrity=integrity, seed=seed
        ),
        coalesce=coalesce,
        n_workers=1,
        queue_capacity=2 * n_requests,
        max_batch_wait=0.01,
    )
    # The same "tiny" model `python -m repro serve --model tiny` runs.
    network, input_shape = build_serving_model("tiny", seed=seed)
    assert input_shape == INPUT_SHAPE
    server = PrivateInferenceServer(network, config)
    trace = synthetic_trace(
        n_requests, INPUT_SHAPE, n_tenants=4, mean_interarrival=2e-4, seed=seed
    )
    start = time.perf_counter()
    report = server.serve_trace(trace)
    wall = time.perf_counter() - start
    return report, wall


def test_coalescing_beats_per_request_dispatch(benchmark, capsys, quick):
    """>= 2x simulated *and* wall-clock throughput at equal settings."""
    n = 64 if quick else 200

    def run_pair():
        return _run(coalesce=True, n_requests=n, integrity=False), _run(
            coalesce=False, n_requests=n, integrity=False
        )

    (coalesced, wall_c), (per_request, wall_p) = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    sim_c = coalesced.metrics.throughput
    sim_p = per_request.metrics.throughput
    sim_ratio = sim_c / sim_p
    wall_ratio = wall_p / wall_c

    rows = [
        [
            "coalesced (K=4)",
            coalesced.metrics.batches,
            f"{coalesced.metrics.batch_fill_ratio:.2f}",
            f"{sim_c:.0f}",
            f"{coalesced.metrics.latency_percentile(99) * 1e3:.2f}",
            f"{n / wall_c:.0f}",
        ],
        [
            "per-request",
            per_request.metrics.batches,
            f"{per_request.metrics.batch_fill_ratio:.2f}",
            f"{sim_p:.0f}",
            f"{per_request.metrics.latency_percentile(99) * 1e3:.2f}",
            f"{n / wall_p:.0f}",
        ],
    ]
    rendered = render_table(
        ["dispatch", "batches", "fill", "sim req/s", "p99 ms", "wall req/s"],
        rows,
        title=(
            "Serving throughput — virtual-batch coalescing vs per-request"
            f" (speedup: {sim_ratio:.1f}x simulated, {wall_ratio:.1f}x wall)"
        ),
    )
    show(capsys, rendered)

    assert len(coalesced.completed) == len(per_request.completed) == n
    assert sim_ratio >= 2.0, f"simulated speedup only {sim_ratio:.2f}x"
    # Wall clock is noisy under CI load; the deterministic simulated ratio
    # above carries the >= 2x acceptance bar, expect ~3-4x here anyway.
    assert wall_ratio >= 1.5, f"wall-clock speedup only {wall_ratio:.2f}x"
    # Coalescing fills the virtual batch; per-request wastes K-1 slots.
    assert coalesced.metrics.batch_fill_ratio > 0.9
    assert per_request.metrics.batch_fill_ratio <= 1.0 / K + 1e-9


def test_thousand_request_trace_with_integrity(benchmark, capsys, quick):
    """1,000 verified requests, zero decode errors, predictions correct
    (``--quick`` smoke mode verifies the same invariants on 200)."""
    n = 200 if quick else 1000

    report, wall = benchmark.pedantic(
        lambda: _run(coalesce=True, n_requests=n, integrity=True, seed=1),
        rounds=1,
        iterations=1,
    )
    assert len(report.completed) == n
    assert report.metrics.decode_errors == 0
    assert report.metrics.integrity_failures == 0
    assert report.metrics.shed == 0

    # Decoded logits track the float reference within quantization error;
    # argmax may flip only on near-ties (never from decode faults).
    net, _ = build_serving_model("tiny", seed=1)
    trace = synthetic_trace(
        n, INPUT_SHAPE, n_tenants=4, mean_interarrival=2e-4, seed=1
    )
    events = sorted(trace, key=lambda r: r.time)
    reference = net.forward(
        np.stack([e.x for e in events]), PlainBackend(), training=False
    )
    by_id = {o.request_id: o for o in report.completed}
    logits = np.stack([by_id[i].logits for i in range(n)])
    max_gap = float(np.max(np.abs(logits - reference)))
    assert max_gap < 0.1, f"decoded logits deviate by {max_gap:.3f}"
    agreement = np.mean(
        np.argmax(logits, axis=1) == np.argmax(reference, axis=1)
    )
    # Near-tie argmax flips are quantization noise; the smaller --quick
    # sample makes the ratio bar correspondingly noisier.
    bar = 0.99 if n >= 1000 else 0.98
    assert agreement >= bar, f"argmax agreement only {agreement:.3f}"

    show(
        capsys,
        "Serving 1,000-request integrity trace — "
        f"{report.metrics.throughput:.0f} req/s simulated, "
        f"{n / wall:.0f} req/s wall, "
        f"p99 {report.metrics.latency_percentile(99) * 1e3:.1f} ms, "
        f"{report.handshakes} handshakes, 0 decode errors, 0 integrity failures",
    )
