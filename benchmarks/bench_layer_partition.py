"""Layer-partitioned serving vs a single enclave on a deep model.

The scale-up argument in one exhibit: the same saturating trace of
mini-resnet requests served by one whole-model enclave shard and by
pipeline groups that cut the flattened execution plan into 2 and 3
contiguous stage ranges (``partition=layered:N``).  Each member shard
only holds ~1/N of the plan, so consecutive flush windows overlap
across members — window ``w+1``'s first stage starts as soon as the
entry shard finishes window ``w``'s first stage, not when the whole
model finishes — and per-request tail latency drops with partition
count, the axis whole-model replication cannot improve.

Acceptance (asserted below):

* 3-stage p99 <= 1/1.5 of the single-enclave p99 (>= 1.5x improvement);
* p99 improves monotonically from 1 -> 2 -> 3 partitions;
* zero shed/failed requests in every partitioning;
* logits bit-identical per request across replicated, layered:2, and
  layered:3 — partitioning is a pure placement decision.

The regression gate (``check_regression.py --partition``) re-checks the
emitted ``p99_ratio`` from the JSON artifact against the 0.75 bound.
"""

import numpy as np
from conftest import show

from repro.cli import build_serving_model
from repro.reporting import render_table
from repro.runtime import DarKnightConfig
from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace

INPUT_SHAPE = (3, 8, 8)
K = 4
#: >= 1.5x p99 at 3 partitions, i.e. a p99 ratio of at most 1/1.5.
SPEEDUP_TARGET = 1.5
#: The (slacker) bound the CI gate re-validates from the artifact.
P99_RATIO_BOUND = 0.75


def _serve(trace, n_stages: int):
    """Serve ``trace`` on ``n_stages`` shards chained as one pipeline group."""
    network, _ = build_serving_model("mini-resnet", seed=0)
    partition = "replicated" if n_stages == 1 else f"layered:{n_stages}"
    config = ServingConfig(
        darknight=DarKnightConfig(
            virtual_batch_size=K, seed=0, num_shards=n_stages
        ),
        partition=partition,
        queue_capacity=2 * len(trace),
    )
    server = PrivateInferenceServer(network, config)
    return server.serve_trace(trace)


def test_layer_partition_cuts_p99_with_bit_identical_logits(
    benchmark, capsys, quick
):
    n = 24 if quick else 64
    # Saturating arrivals: the single enclave queues deeply, so tail
    # latency is governed by service throughput — the axis partitioning
    # multiplies.
    trace = synthetic_trace(
        n_requests=n,
        input_shape=INPUT_SHAPE,
        n_tenants=4,
        mean_interarrival=1e-5,
        seed=0,
    )

    def run_all():
        return {stages: _serve(trace, stages) for stages in (1, 2, 3)}

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Full completion everywhere so the latency comparison is fair.
    for report in reports.values():
        assert len(report.completed) == n
        assert all(o.ok for o in report.outcomes)

    # Bit-identical logits per request across every partitioning.
    baseline_logits = {o.request_id: o.logits for o in reports[1].completed}
    for stages in (2, 3):
        for o in reports[stages].completed:
            assert np.array_equal(o.logits, baseline_logits[o.request_id])

    p99 = {
        stages: report.metrics.latency_percentile(99)
        for stages, report in reports.items()
    }
    p99_ratio = p99[3] / p99[1]
    speedup = p99[1] / p99[3]

    benchmark.extra_info["n_requests"] = n
    benchmark.extra_info["p99_ratio"] = p99_ratio
    benchmark.extra_info["p99_ratio_2"] = p99[2] / p99[1]
    benchmark.extra_info["speedup_3_stages"] = speedup

    show(
        capsys,
        render_table(
            ["metric", "replicated (1)", "layered:2", "layered:3"],
            [
                [
                    "p99 (sim ms)",
                    f"{p99[1] * 1e3:.2f}",
                    f"{p99[2] * 1e3:.2f}",
                    f"{p99[3] * 1e3:.2f}",
                ],
                [
                    "p99 vs single",
                    "1.00x",
                    f"{p99[1] / p99[2]:.2f}x",
                    f"{speedup:.2f}x",
                ],
                [
                    "mean (sim ms)",
                    f"{reports[1].metrics.mean_latency * 1e3:.2f}",
                    f"{reports[2].metrics.mean_latency * 1e3:.2f}",
                    f"{reports[3].metrics.mean_latency * 1e3:.2f}",
                ],
            ],
            title=(
                f"Layer-partitioned serving — mini-resnet"
                f" ({n} requests, K={K}, target >= {SPEEDUP_TARGET:.1f}x p99"
                f" at 3 partitions)"
            ),
        ),
    )

    assert p99[2] < p99[1], (
        f"layered:2 p99 {p99[2]:.4f}s did not improve on the single-enclave"
        f" p99 {p99[1]:.4f}s"
    )
    assert p99[3] < p99[2], (
        f"layered:3 p99 {p99[3]:.4f}s did not improve on layered:2"
        f" p99 {p99[2]:.4f}s"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"3-partition p99 {p99[3]:.4f}s is only {speedup:.2f}x better than"
        f" the single-enclave p99 {p99[1]:.4f}s"
        f" (target {SPEEDUP_TARGET:.1f}x)"
    )
