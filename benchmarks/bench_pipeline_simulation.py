"""Event-driven validation of Fig. 5's pipelining claim.

The analytical timeline predicts pipelined per-sample time as the slowest
hardware stream; this benchmark *schedules* the actual per-virtual-batch
stage chain (encode -> scatter -> compute -> gather -> decode/nonlinear)
onto exclusive TEE/link/GPU resources for 128 virtual batches and compares
the measured makespan against both the serial schedule and the analytical
bound, per model.
"""

from conftest import show

from repro.models import mobilenet_v2_spec, resnet50_spec, vgg16_spec
from repro.perf import CostModel, build_timeline, simulate_darknight_training
from repro.reporting import render_table
from repro.runtime import DarKnightConfig

SPECS = {"VGG16": vgg16_spec, "ResNet50": resnet50_spec, "MobileNetV2": mobilenet_v2_spec}
N_BATCHES = 128


def _simulate_all():
    cm = CostModel()
    cfg = DarKnightConfig(virtual_batch_size=2)
    rows = []
    for name, spec_fn in SPECS.items():
        breakdown = cm.darknight_training(spec_fn(), cfg)
        timeline = build_timeline(breakdown)
        serial = simulate_darknight_training(breakdown, N_BATCHES, pipelined=False)
        piped = simulate_darknight_training(breakdown, N_BATCHES, pipelined=True)
        rows.append(
            {
                "model": name,
                "serial_per_batch": serial.makespan / N_BATCHES,
                "piped_per_batch": piped.makespan / N_BATCHES,
                "analytical_bound": timeline.pipelined,
                "overlap_gain": serial.makespan / piped.makespan,
                "bottleneck_util": max(
                    piped.utilisation(r) for r in ("tee", "link", "gpu")
                ),
            }
        )
    return rows


def test_pipeline_simulation(benchmark, capsys):
    rows = benchmark(_simulate_all)
    show(
        capsys,
        render_table(
            ["Model", "serial ms/vb", "pipelined ms/vb", "analytical bound",
             "overlap gain", "bottleneck util"],
            [
                [
                    r["model"],
                    f"{r['serial_per_batch'] * 1e3:.1f}",
                    f"{r['piped_per_batch'] * 1e3:.1f}",
                    f"{r['analytical_bound'] * 1e3:.1f}",
                    f"{r['overlap_gain']:.2f}x",
                    f"{r['bottleneck_util']:.2f}",
                ]
                for r in rows
            ],
            title="Event-driven pipeline simulation (128 virtual batches, K=2)",
        ),
    )
    for r in rows:
        # Overlap always helps and respects the analytical lower bound.
        assert r["overlap_gain"] > 1.2, r["model"]
        assert r["piped_per_batch"] >= r["analytical_bound"] - 1e-12, r["model"]
        assert r["piped_per_batch"] <= r["analytical_bound"] * 1.3, r["model"]
        # The bottleneck resource is kept busy.
        assert r["bottleneck_util"] > 0.75, r["model"]
