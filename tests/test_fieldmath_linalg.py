"""Unit + property tests for field linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError, SingularMatrixError
from repro.fieldmath import (
    FieldRng,
    PrimeField,
    all_column_subsets_full_rank,
    determinant,
    field_dot,
    field_matmul,
    inverse,
    is_invertible,
    rank,
    solve,
    vandermonde,
)


def _bigint_matmul(a, b, p):
    """Exact reference via Python big ints."""
    a_obj = a.astype(object)
    b_obj = b.astype(object)
    return np.mod(a_obj @ b_obj, p).astype(np.int64)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(2, 6),
    m=st.integers(2, 6),
    k=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_field_matmul_matches_bigint_reference(n, m, k, seed):
    field = PrimeField()
    rng = FieldRng(field, seed)
    a = rng.uniform((n, m))
    b = rng.uniform((m, k))
    assert np.array_equal(field_matmul(field, a, b), _bigint_matmul(a, b, field.p))


def test_field_matmul_chunking_handles_long_contractions(field, frng):
    # Contraction far beyond the safe accumulation bound must stay exact.
    n = 20_000
    a = frng.uniform((1, n))
    b = frng.uniform((n, 1))
    expected = _bigint_matmul(a, b, field.p)
    assert np.array_equal(field_matmul(field, a, b, chunk=1024), expected)
    assert np.array_equal(field_matmul(field, a, b), expected)


def test_field_matmul_rejects_bad_shapes(field, frng):
    with pytest.raises(FieldError):
        field_matmul(field, frng.uniform((2, 3)), frng.uniform((4, 2)))
    with pytest.raises(FieldError):
        field_matmul(field, frng.uniform((2, 3)), frng.uniform((3, 2)), chunk=0)


def test_field_dot(field, frng):
    a = frng.uniform((5000,))
    b = frng.uniform((5000,))
    expected = int(np.mod(np.dot(a.astype(object), b.astype(object)), field.p))
    assert field_dot(field, a, b) == expected
    with pytest.raises(FieldError):
        field_dot(field, a, b[:10])


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 6), seed=st.integers(0, 10_000))
def test_inverse_roundtrip(n, seed):
    field = PrimeField()
    rng = FieldRng(field, seed)
    m = rng.invertible_matrix(n)
    m_inv = inverse(field, m)
    assert np.array_equal(field_matmul(field, m, m_inv), field.eye(n))
    assert np.array_equal(field_matmul(field, m_inv, m), field.eye(n))


def test_inverse_of_singular_raises(field):
    singular = field.element([[1, 2], [2, 4]])
    with pytest.raises(SingularMatrixError):
        inverse(field, singular)
    with pytest.raises(SingularMatrixError):
        inverse(field, field.ones((2, 3)))


def test_solve_matches_inverse(field, frng):
    a = frng.invertible_matrix(4)
    b = frng.uniform((4, 2))
    x = solve(field, a, b)
    assert np.array_equal(field_matmul(field, a, x), b)
    # 1-D right-hand side round-trips as a vector.
    v = frng.uniform((4,))
    xv = solve(field, a, v)
    assert xv.shape == (4,)
    assert np.array_equal(field_matmul(field, a, xv.reshape(-1, 1)).ravel(), v)


def test_rank_and_invertibility(field, frng):
    m = frng.invertible_matrix(5)
    assert rank(field, m) == 5
    assert is_invertible(field, m)
    deficient = m.copy()
    deficient[4] = deficient[3]
    assert rank(field, deficient) == 4
    assert not is_invertible(field, deficient)
    assert not is_invertible(field, frng.uniform((3, 4)))


def test_determinant_properties(field, frng):
    m = frng.invertible_matrix(4)
    d = determinant(field, m)
    assert d != 0
    singular = m.copy()
    singular[0] = singular[1]
    assert determinant(field, singular) == 0
    assert determinant(field, field.eye(3)) == 1
    with pytest.raises(FieldError):
        determinant(field, frng.uniform((2, 3)))


def test_determinant_multiplicative(field, frng):
    a = frng.invertible_matrix(3)
    b = frng.invertible_matrix(3)
    lhs = determinant(field, field_matmul(field, a, b))
    rhs = field.mul(determinant(field, a), determinant(field, b))
    assert lhs == int(rhs)


def test_vandermonde_mds_property(field, frng):
    points = frng.distinct_nonzero(7)
    v = vandermonde(field, points, 3)
    assert v.shape == (3, 7)
    assert all_column_subsets_full_rank(field, v, 3, max_checks=None)


def test_vandermonde_rejects_duplicates(field):
    with pytest.raises(FieldError):
        vandermonde(field, np.array([1, 2, 2]), 2)
    with pytest.raises(FieldError):
        vandermonde(field, np.array([1, 2, 3]), 0)


def test_all_column_subsets_detects_deficiency(field):
    # A matrix with a zero column fails the subset-rank certificate.
    m = field.element([[1, 0, 2], [3, 0, 4]])
    assert not all_column_subsets_full_rank(field, m, 2, max_checks=None)
    with pytest.raises(FieldError):
        all_column_subsets_full_rank(field, m, 3)


def test_random_matrix_usually_not_mds_counterexample(field, frng):
    # The MDS generator must produce subset-full-rank noise blocks.
    mds = frng.mds_matrix(2, 6)
    assert all_column_subsets_full_rank(field, mds, 2, max_checks=None)
