"""Tests for coefficient generation (the Equation 5/13 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.fieldmath import FieldRng, PrimeField, is_invertible
from repro.masking import CoefficientSet


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(1, 5),
    m=st.integers(1, 3),
    extra=st.integers(0, 2),
    seed=st.integers(0, 5000),
)
def test_generated_set_satisfies_recovery_constraint(k, m, extra, seed):
    rng = FieldRng(PrimeField(), seed)
    coeffs = CoefficientSet.generate(rng, k=k, m=m, extra_shares=extra)
    assert coeffs.verify()
    assert coeffs.n_shares == k + m + extra
    assert coeffs.n_sources == k + m
    assert coeffs.extra_shares == extra
    assert coeffs.collusion_tolerance() == m


def test_block_views(frng):
    coeffs = CoefficientSet.generate(frng, k=3, m=2, extra_shares=1)
    assert coeffs.a1.shape == (3, 6)
    assert coeffs.a2.shape == (2, 6)
    assert np.array_equal(np.vstack([coeffs.a1, coeffs.a2]), coeffs.a)


def test_primary_subset_is_decodable(frng, field):
    coeffs = CoefficientSet.generate(frng, k=4, m=1, extra_shares=1)
    decode = coeffs.decoding_matrix()
    sub = coeffs.a[:, list(coeffs.primary_subset)]
    from repro.fieldmath import field_matmul

    assert np.array_equal(field_matmul(field, sub, decode), field.eye(5))


def test_decoding_matrix_rejects_wrong_size(frng):
    coeffs = CoefficientSet.generate(frng, k=2, m=1, extra_shares=1)
    with pytest.raises(EncodingError):
        coeffs.decoding_matrix((0, 1))


def test_iter_decoding_subsets_yields_multiple_with_redundancy(frng, field):
    coeffs = CoefficientSet.generate(frng, k=2, m=1, extra_shares=1)
    subsets = list(coeffs.iter_decoding_subsets())
    assert coeffs.primary_subset in subsets
    assert len(subsets) >= 2
    for subset in subsets:
        assert is_invertible(field, coeffs.a[:, list(subset)])


def test_iter_decoding_subsets_limit(frng):
    coeffs = CoefficientSet.generate(frng, k=2, m=1, extra_shares=2)
    assert len(list(coeffs.iter_decoding_subsets(limit=3))) == 3


def test_backward_matrices_for_alternate_subset(frng, field):
    coeffs = CoefficientSet.generate(frng, k=2, m=1, extra_shares=1)
    alt = next(s for s in coeffs.iter_decoding_subsets() if s != coeffs.primary_subset)
    b_alt, gamma = coeffs.backward_matrices_for_subset(alt)
    from repro.fieldmath import field_matmul

    target = field.zeros((2, 3))
    target[:2, :2] = field.eye(2)
    lhs = field_matmul(
        field, field_matmul(field, b_alt.T, np.diag(gamma)), coeffs.a.T
    )
    assert np.array_equal(lhs, target)
    # Rows outside the subset are zero.
    outside = set(range(coeffs.n_shares)) - set(alt)
    for j in outside:
        assert np.all(b_alt[j] == 0)


def test_generation_validation_errors(frng):
    with pytest.raises(EncodingError):
        CoefficientSet.generate(frng, k=0)
    with pytest.raises(EncodingError):
        CoefficientSet.generate(frng, k=2, m=0)
    with pytest.raises(EncodingError):
        CoefficientSet.generate(frng, k=2, m=1, extra_shares=-1)


def test_certified_collusion_generation(frng, field):
    from repro.fieldmath import all_column_subsets_full_rank

    coeffs = CoefficientSet.generate(
        frng, k=2, m=2, extra_shares=1, certify_collusion=True
    )
    assert all_column_subsets_full_rank(field, coeffs.a2, 2, max_checks=None)


def test_mds_noise_block_always_subset_full_rank(frng, field):
    from repro.fieldmath import all_column_subsets_full_rank

    for _ in range(5):
        coeffs = CoefficientSet.generate(frng, k=3, m=2)
        assert all_column_subsets_full_rank(field, coeffs.a2, 2, max_checks=None)


def test_non_mds_generation_still_verifies(frng):
    coeffs = CoefficientSet.generate(frng, k=3, m=2, mds_noise=False)
    assert coeffs.verify()
