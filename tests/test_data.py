"""Tests for synthetic datasets and batch loading."""

import numpy as np
import pytest

from repro.data import BatchIterator, cifar_like, imagenet_like, make_image_dataset
from repro.errors import ConfigurationError


def test_dataset_shapes_and_labels():
    data = make_image_dataset(40, 20, n_classes=5, shape=(3, 8, 8), seed=0)
    assert data.x_train.shape == (40, 3, 8, 8)
    assert data.x_test.shape == (20, 3, 8, 8)
    assert data.input_shape == (3, 8, 8)
    assert set(np.unique(data.y_train)).issubset(set(range(5)))
    assert np.all(np.abs(data.x_train) <= 1.0)


def test_dataset_deterministic_by_seed():
    a = make_image_dataset(10, 5, seed=3, shape=(1, 4, 4))
    b = make_image_dataset(10, 5, seed=3, shape=(1, 4, 4))
    c = make_image_dataset(10, 5, seed=4, shape=(1, 4, 4))
    assert np.array_equal(a.x_train, b.x_train)
    assert not np.array_equal(a.x_train, c.x_train)


def test_dataset_is_learnable():
    """A linear probe beats chance comfortably — the task carries signal."""
    data = make_image_dataset(300, 100, n_classes=4, shape=(1, 6, 6), seed=0)
    x = data.x_train.reshape(300, -1)
    xt = data.x_test.reshape(100, -1)
    # One-step least-squares classifier.
    onehot = np.eye(4)[data.y_train]
    w, *_ = np.linalg.lstsq(x, onehot, rcond=None)
    acc = float(np.mean(np.argmax(xt @ w, axis=1) == data.y_test))
    assert acc > 0.5  # chance is 0.25


def test_validation():
    with pytest.raises(ConfigurationError):
        make_image_dataset(0, 5)
    with pytest.raises(ConfigurationError):
        make_image_dataset(20, 0)
    with pytest.raises(ConfigurationError):
        make_image_dataset(20, 5, n_classes=1)


def test_cifar_like_defaults():
    data = cifar_like(n_train=16, n_test=8, seed=0)
    assert data.input_shape == (3, 16, 16)
    assert data.n_classes == 10
    assert cifar_like(16, 8, size=32).input_shape == (3, 32, 32)


def test_imagenet_like_shape():
    data = imagenet_like(n_train=2, n_test=1, n_classes=50)
    assert data.input_shape == (3, 224, 224)


def test_batch_iterator_covers_everything(nprng):
    x = np.arange(10).reshape(10, 1)
    y = np.arange(10)
    seen = []
    for bx, by in BatchIterator(x, y, batch_size=3, shuffle=True, seed=0):
        assert bx.shape[0] == by.shape[0]
        seen.extend(by.tolist())
    assert sorted(seen) == list(range(10))


def test_batch_iterator_drop_last():
    x = np.zeros((10, 1))
    y = np.zeros(10)
    it = BatchIterator(x, y, batch_size=3, drop_last=True)
    assert len(it) == 3
    assert sum(1 for _ in it) == 3
    it2 = BatchIterator(x, y, batch_size=3)
    assert len(it2) == 4


def test_batch_iterator_no_shuffle_is_ordered():
    x = np.arange(6).reshape(6, 1)
    y = np.arange(6)
    batches = list(BatchIterator(x, y, batch_size=2, shuffle=False))
    assert batches[0][1].tolist() == [0, 1]


def test_batch_iterator_validation():
    with pytest.raises(ConfigurationError):
        BatchIterator(np.zeros((3, 1)), np.zeros(2), batch_size=1)
    with pytest.raises(ConfigurationError):
        BatchIterator(np.zeros((3, 1)), np.zeros(3), batch_size=0)
