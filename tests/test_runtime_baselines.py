"""Tests for the SGX-only and GPU-only baseline backends."""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Flatten, PlainBackend, ReLU, Sequential
from repro.runtime import GpuOnlyBackend, SgxOnlyBackend


@pytest.fixture()
def net(nprng):
    return Sequential(
        [Conv2D(1, 2, 3, 1, 1, rng=nprng), ReLU(), Flatten(), Dense(2 * 16, 3, rng=nprng)],
        input_shape=(1, 4, 4),
    )


def test_sgx_only_is_numerically_identical_to_plain(net, nprng):
    x = nprng.normal(size=(3, 1, 4, 4))
    sgx = SgxOnlyBackend()
    assert np.allclose(net.forward(x, sgx), net.forward(x, PlainBackend()))


def test_sgx_only_charges_the_enclave(net, nprng):
    sgx = SgxOnlyBackend()
    x = nprng.normal(size=(3, 1, 4, 4))
    net.forward(x, sgx)
    net.backward(np.ones((3, 3)), sgx)
    ops = sgx.enclave.ledger.op_counts
    assert ops["sgx_conv2d_forward"] == 1
    assert ops["sgx_dense_forward"] == 1
    assert ops["sgx_conv2d_grad_w"] == 1
    assert ops["sgx_dense_grad_w"] == 1
    assert sgx.enclave.ledger.op_bytes["sgx_conv2d_forward"] > 0


def test_sgx_only_counts_paging_on_big_working_sets(nprng):
    from repro.enclave import Enclave, EpcModel

    sgx = SgxOnlyBackend(Enclave(epc=EpcModel(usable_bytes=1024)))
    x = nprng.normal(size=(2, 1, 16, 16))
    w = nprng.normal(size=(4, 1, 3, 3))
    sgx.conv2d_forward(x, w, None, 1, 1, "c")
    assert sgx.enclave.epc.stats.total_paged_bytes > 0


def test_gpu_only_is_numerically_identical_to_plain(net, nprng):
    x = nprng.normal(size=(3, 1, 4, 4))
    gpu = GpuOnlyBackend()
    assert np.allclose(net.forward(x, gpu), net.forward(x, PlainBackend()))


def test_gpu_only_splits_work_across_devices(net, nprng):
    gpu = GpuOnlyBackend()
    x = nprng.normal(size=(3, 1, 4, 4))
    net.forward(x, gpu)
    net.backward(np.ones((3, 3)), gpu)
    macs = [dev.ledger.mac_ops for dev in gpu.cluster.devices]
    assert len(macs) == 3
    assert all(m > 0 for m in macs)
    assert max(macs) - min(macs) <= 1  # even split


def test_gpu_only_training_learns(net, nprng):
    from repro.runtime import Trainer

    x = nprng.normal(size=(12, 1, 4, 4))
    y = nprng.integers(0, 3, 12)
    trainer = Trainer(net, GpuOnlyBackend(), lr=0.05, momentum=0.9)
    losses = [trainer.train_step(x, y) for _ in range(15)]
    assert losses[-1] < losses[0]
