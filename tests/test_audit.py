"""Unit tests for the verifiable audit-trail package core.

Covers the Merkle layer (roots, O(log n) proofs, odd-promotion,
domain separation), canonical serialization (platform-stable array and
JSON digests), window commitments, the per-shard hash chain (tamper
detection at every layer, JSONL persistence, damaged-log recovery), the
tenant proof surface, and deterministic window replay — including the
ISSUE's edge cases: empty windows, single-request windows, proofs
checked against the wrong shard root, truncated/corrupted logs, and
replay of a window whose original run used adaptive K.
"""

import json
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.audit import (
    EMPTY_ROOT,
    STATUS_RETRIED,
    AuditLog,
    InclusionProof,
    MerkleProof,
    MerkleTree,
    WindowCommitment,
    array_digest,
    array_from_canonical,
    canonical_array,
    genesis_root,
    leaf_digest,
    prove,
    replay_window,
    verify_inclusion,
    verify_proof,
)
from repro.errors import AuditError


def _leaves(n):
    return [leaf_digest(f"leaf-{i}".encode()) for i in range(n)]


def _request(rid, tenant="t0", dim=4):
    rng = np.random.default_rng(rid)
    return SimpleNamespace(
        request_id=rid, tenant=tenant, x=rng.normal(size=dim), arrival_time=0.1 * rid
    )


def _batch(batch_id, rids, tenant="t0", retries=0, dim=4):
    return SimpleNamespace(
        batch_id=batch_id,
        requests=[_request(r, tenant=tenant, dim=dim) for r in rids],
        flush_time=1.0 + batch_id,
        retries=retries,
    )


def _flip_hex(digest):
    """Return the digest with its first nibble flipped."""
    return ("0" if digest[0] != "0" else "1") + digest[1:]


# ----------------------------------------------------------------------
# Merkle trees
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 13])
def test_every_leaf_proves_and_verifies(n):
    tree = MerkleTree(_leaves(n))
    for i in range(n):
        proof = tree.prove(i)
        assert verify_inclusion(proof, tree.root)
        assert len(proof.path) <= math.ceil(math.log2(n)) if n > 1 else not proof.path


def test_single_leaf_root_is_the_leaf():
    leaves = _leaves(1)
    assert MerkleTree(leaves).root == leaves[0]


def test_empty_tree_has_the_distinguished_empty_root():
    tree = MerkleTree([])
    assert tree.root == EMPTY_ROOT
    with pytest.raises(AuditError):
        tree.prove(0)


def test_flipped_root_or_leaf_breaks_verification():
    tree = MerkleTree(_leaves(5))
    proof = tree.prove(2)
    assert not verify_inclusion(proof, _flip_hex(tree.root))
    forged = MerkleProof(
        leaf=_flip_hex(proof.leaf),
        index=proof.index,
        n_leaves=proof.n_leaves,
        path=proof.path,
    )
    assert not verify_inclusion(forged, tree.root)


def test_odd_promotion_is_not_duplicate_hashing():
    """Promoting the odd node must differ from pairing it with itself —
    the duplicate-last-leaf trees of the naive construction collide."""
    a, b, c = _leaves(3)
    assert MerkleTree([a, b, c]).root != MerkleTree([a, b, c, c]).root


def test_sibling_order_is_committed():
    """Swapping two leaves changes the root (position is authenticated)."""
    a, b = _leaves(2)
    assert MerkleTree([a, b]).root != MerkleTree([b, a]).root


def test_proof_round_trips_through_records():
    tree = MerkleTree(_leaves(6))
    proof = tree.prove(4)
    again = MerkleProof.from_record(json.loads(json.dumps(proof.to_record())))
    assert again == proof
    assert verify_inclusion(again, tree.root)


def test_malformed_proof_step_side_fails_closed():
    tree = MerkleTree(_leaves(4))
    record = tree.prove(1).to_record()
    record["path"][0]["side"] = "up"
    assert not verify_inclusion(MerkleProof.from_record(record), tree.root)


def test_out_of_range_proof_index_raises():
    with pytest.raises(AuditError):
        MerkleTree(_leaves(3)).prove(3)


# ----------------------------------------------------------------------
# canonical serialization
# ----------------------------------------------------------------------
def test_canonical_array_round_trips_and_widens():
    for arr in [
        np.arange(6, dtype=np.float32).reshape(2, 3),
        np.arange(4, dtype=np.int32),
        np.array([True, False]),
        np.float64(3.5) * np.ones((1,)),
    ]:
        record = canonical_array(arr)
        assert record["dtype"] in ("<f8", "<i8")
        back = array_from_canonical(record)
        assert back.shape == arr.shape
        assert np.array_equal(back, arr.astype(back.dtype))


def test_canonical_array_rejects_exotic_dtypes():
    with pytest.raises(AuditError):
        canonical_array(np.array(["a", "b"]))


def test_array_digest_separates_shape_and_value():
    flat = np.arange(6, dtype=float)
    assert array_digest(flat) != array_digest(flat.reshape(2, 3))
    assert array_digest(flat) == array_digest(flat.copy())
    bumped = flat.copy()
    bumped[3] = np.nextafter(bumped[3], np.inf)
    assert array_digest(flat) != array_digest(bumped)


def test_integer_and_float_arrays_never_collide():
    assert array_digest(np.arange(4)) != array_digest(np.arange(4, dtype=float))


# ----------------------------------------------------------------------
# window commitments
# ----------------------------------------------------------------------
def test_commitment_commits_inputs_and_outputs_per_leaf():
    batch = _batch(0, [0, 1], tenant="alice")
    out = np.ones((2, 3))
    c = WindowCommitment.build(0, [batch], [out], status="ok")
    assert [leaf["request_id"] for leaf in c.leaves] == [0, 1]
    for i, leaf in enumerate(c.leaves):
        assert leaf["tenant"] == "alice"
        assert leaf["input_digest"] == array_digest(batch.requests[i].x)
        assert leaf["output_digest"] == array_digest(out[i])
        assert np.array_equal(
            array_from_canonical(leaf["input"]), batch.requests[i].x
        )
    meta = c.meta(window_id=7)
    assert meta["window_id"] == 7
    assert meta["n_requests"] == 2
    assert not meta["aborted"]


def test_commitment_without_outputs_marks_leaves_output_free():
    c = WindowCommitment.build(
        1, [_batch(0, [5])], [None], status="retried", aborted=True, error="boom"
    )
    assert c.leaves[0]["output_digest"] is None
    assert c.meta()["aborted"]


def test_commitment_shape_mismatches_raise():
    batch = _batch(0, [0, 1])
    with pytest.raises(AuditError):
        WindowCommitment.build(0, [batch], [], status="ok")
    with pytest.raises(AuditError):
        WindowCommitment.build(0, [batch], [np.ones((3, 2))], status="ok")


def test_empty_window_commits_the_empty_root():
    c = WindowCommitment.build(0, [], [], status="ok")
    assert c.merkle_root == EMPTY_ROOT
    assert c.leaves == []


# ----------------------------------------------------------------------
# the chained log
# ----------------------------------------------------------------------
def _filled_log(shard_id=0, n_windows=3, path=None):
    log = AuditLog(shard_id, path)
    for w in range(n_windows):
        batch = _batch(w, [2 * w, 2 * w + 1])
        out = np.full((2, 3), float(w))
        log.append(WindowCommitment.build(shard_id, [batch], [out], status="ok"))
    return log


def test_chain_head_moves_and_verifies():
    log = _filled_log(n_windows=3)
    assert log.chain_root != genesis_root(0)
    assert log.verify_chain() == 3
    assert [e["meta"]["window_id"] for e in log.entries] == [0, 1, 2]


def test_empty_log_head_is_genesis_and_distinct_per_shard():
    assert AuditLog(0).chain_root == genesis_root(0)
    assert genesis_root(0) != genesis_root(1)


def test_log_rejects_foreign_shard_commitments():
    log = AuditLog(0)
    with pytest.raises(AuditError):
        log.append(WindowCommitment.build(1, [], [], status="ok"))


@pytest.mark.parametrize(
    "mutate",
    [
        lambda e: e["leaves"][0].__setitem__("tenant", "mallory"),
        lambda e: e.__setitem__("merkle_root", _flip_hex(e["merkle_root"])),
        lambda e: e.__setitem__("prev_root", _flip_hex(e["prev_root"])),
        lambda e: e.__setitem__("chain_root", _flip_hex(e["chain_root"])),
        lambda e: e["meta"].__setitem__("status", "forged"),
        lambda e: e["meta"].__setitem__("window_id", 9),
    ],
    ids=["leaf", "merkle_root", "prev_root", "chain_root", "meta", "window_id"],
)
def test_any_tamper_breaks_verify_chain(mutate):
    log = _filled_log(n_windows=3)
    mutate(log.entries[1])
    with pytest.raises(AuditError):
        log.verify_chain()


def test_dropping_a_middle_window_breaks_the_chain():
    log = _filled_log(n_windows=3)
    del log.entries[1]
    with pytest.raises(AuditError):
        log.verify_chain()


def test_persisted_log_loads_back_identically(tmp_path):
    path = tmp_path / "shard0.audit.jsonl"
    log = _filled_log(path=path, n_windows=4)
    loaded = AuditLog.load(path)
    assert loaded.shard_id == 0
    assert loaded.entries == log.entries
    assert loaded.chain_root == log.chain_root
    assert loaded.verify_chain() == 4


def test_load_of_missing_or_corrupt_log_raises(tmp_path):
    with pytest.raises(AuditError):
        AuditLog.load(tmp_path / "nope.jsonl")
    path = tmp_path / "bad.jsonl"
    _filled_log(path=path, n_windows=2)
    text = path.read_text().replace('"tenant":"t0"', '"tenant":"t1"', 1)
    path.write_text(text)
    with pytest.raises(AuditError):
        AuditLog.load(path)


def test_recover_keeps_the_valid_prefix_of_a_truncated_log(tmp_path):
    path = tmp_path / "torn.jsonl"
    full = _filled_log(path=path, n_windows=3)
    lines = path.read_text().splitlines()
    # A crash mid-append: the final line is half-written.
    path.write_text("\n".join(lines[:2] + [lines[2][: len(lines[2]) // 2]]) + "\n")
    log, dropped = AuditLog.recover(path)
    assert dropped == 1
    assert log.n_windows == 2
    assert log.verify_chain() == 2
    assert log.entries == full.entries[:2]


def test_recover_stops_at_corruption_not_just_malformed_json(tmp_path):
    """A syntactically valid but chain-breaking line (tampered leaf) must
    also end recovery — damage cannot resurrect as a different history."""
    path = tmp_path / "evil.jsonl"
    _filled_log(path=path, n_windows=3)
    lines = path.read_text().splitlines()
    lines[1] = lines[1].replace('"tenant":"t0"', '"tenant":"mallory"', 1)
    path.write_text("\n".join(lines) + "\n")
    log, dropped = AuditLog.recover(path)
    assert (log.n_windows, dropped) == (1, 2)
    assert log.verify_chain() == 1


def test_recover_of_empty_file_is_an_empty_log(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    log, dropped = AuditLog.recover(path, shard_id=3)
    assert (log.n_windows, dropped) == (0, 0)
    assert log.chain_root == genesis_root(3)


# ----------------------------------------------------------------------
# inclusion proofs against the chained root
# ----------------------------------------------------------------------
def test_every_request_proves_against_the_chain_head():
    log = _filled_log(n_windows=4)
    for rid in range(8):
        proof = prove(log, rid)
        assert verify_proof(proof, log.chain_root)
        assert proof.leaf["request_id"] == rid


def test_proof_fails_against_the_wrong_shard_root():
    log = _filled_log(shard_id=0, n_windows=2)
    other = _filled_log(shard_id=1, n_windows=2)
    proof = prove(log, 1)
    assert verify_proof(proof, log.chain_root)
    assert not verify_proof(proof, other.chain_root)
    assert not verify_proof(proof, genesis_root(0))
    assert not verify_proof(proof, _flip_hex(log.chain_root))


def test_single_request_window_proof_has_an_empty_path():
    log = AuditLog(0)
    log.append(
        WindowCommitment.build(0, [_batch(0, [42])], [np.ones((1, 3))], status="ok")
    )
    proof = prove(log, 42)
    assert proof.merkle.path == ()
    assert verify_proof(proof, log.chain_root)


def test_tampered_leaf_or_suffix_breaks_the_proof():
    log = _filled_log(n_windows=3)
    record = prove(log, 0).to_record()  # window 0 -> non-empty suffix
    assert len(record["chain_suffix"]) == 2
    forged = json.loads(json.dumps(record))
    forged["leaf"]["tenant"] = "mallory"
    assert not verify_proof(InclusionProof.from_record(forged), log.chain_root)
    forged = json.loads(json.dumps(record))
    forged["chain_suffix"][1]["merkle_root"] = _flip_hex(
        forged["chain_suffix"][1]["merkle_root"]
    )
    assert not verify_proof(InclusionProof.from_record(forged), log.chain_root)
    forged = json.loads(json.dumps(record))
    forged["window_meta"]["status"] = "forged"
    assert not verify_proof(InclusionProof.from_record(forged), log.chain_root)


def test_prove_prefers_the_terminal_leaf_over_retry_markers():
    log = AuditLog(0)
    log.append(
        WindowCommitment.build(
            0, [_batch(0, [7])], [None], status=STATUS_RETRIED, aborted=True
        )
    )
    log.append(
        WindowCommitment.build(
            0, [_batch(0, [7], retries=1)], [np.ones((1, 3))], status="ok"
        )
    )
    proof = prove(log, 7)
    assert proof.window_id == 1
    assert proof.leaf["status"] == "ok"
    assert verify_proof(proof, log.chain_root)


def test_prove_falls_back_to_a_retry_marker_when_nothing_terminal():
    log = AuditLog(0)
    log.append(
        WindowCommitment.build(
            0, [_batch(0, [7])], [None], status=STATUS_RETRIED, aborted=True
        )
    )
    proof = prove(log, 7)
    assert proof.leaf["status"] == STATUS_RETRIED
    assert verify_proof(proof, log.chain_root)


def test_prove_unknown_request_raises():
    with pytest.raises(AuditError):
        prove(_filled_log(), 999)


# ----------------------------------------------------------------------
# deterministic replay
# ----------------------------------------------------------------------
def _net(seed=0):
    from repro.nn import Dense, ReLU, Sequential

    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def _served_log(dk, n_requests=8, seed=3):
    """Serve a small trace with auditing on; returns (server, report)."""
    from repro.serving import AuditConfig, PrivateInferenceServer, ServingConfig
    from repro.serving import synthetic_trace

    config = ServingConfig(darknight=dk, audit=AuditConfig())
    server = PrivateInferenceServer(_net(), config)
    trace = synthetic_trace(n_requests, (16,), n_tenants=2, seed=seed)
    return server, server.serve_trace(trace)


def test_replay_reproduces_committed_digests_bit_exactly():
    from repro.runtime import DarKnightConfig

    dk = DarKnightConfig(virtual_batch_size=4, seed=11)
    server, _ = _served_log(dk)
    log = server.audit.logs[0]
    for entry in log.entries:
        result = replay_window(entry, _net(), server.darknight)
        assert result.matched and not result.mismatches


def test_replay_detects_a_forged_output_digest():
    from repro.runtime import DarKnightConfig

    dk = DarKnightConfig(virtual_batch_size=4, seed=11)
    server, _ = _served_log(dk)
    entry = json.loads(json.dumps(server.audit.logs[0].entries[0]))
    entry["leaves"][0]["output_digest"] = _flip_hex(
        entry["leaves"][0]["output_digest"]
    )
    with pytest.raises(AuditError):
        replay_window(entry, _net(), server.darknight)
    result = replay_window(entry, _net(), server.darknight, strict=False)
    assert not result.matched
    assert len(result.mismatches) == 1


def test_replay_of_adaptive_k_window_uses_the_effective_config():
    """A deployment whose adaptive governor clamped K must replay from
    the manifest's *effective* config — per-sample normalization makes
    the digests independent of the K actually used, and the recorded
    config keeps provisioning well-formed."""
    from repro.runtime import DarKnightConfig
    from repro.serving import (
        AdaptiveBatchingConfig,
        AuditConfig,
        PrivateInferenceServer,
        ServingConfig,
        synthetic_trace,
    )

    dk = DarKnightConfig(
        virtual_batch_size=8, seed=11, epc_budget_bytes=2_500
    )
    config = ServingConfig(
        darknight=dk,
        audit=AuditConfig(),
        adaptive=AdaptiveBatchingConfig(),
    )
    server = PrivateInferenceServer(_net(), config)
    assert server.darknight.virtual_batch_size < 8  # the clamp happened
    report = server.serve_trace(synthetic_trace(12, (16,), n_tenants=3, seed=5))
    assert len(report.completed) == 12
    log = server.audit.logs[0]
    replayed = 0
    for entry in log.entries:
        result = replay_window(entry, _net(), server.darknight)
        assert result.matched
        replayed += result.n_requests
    assert replayed == 12


def test_replay_refuses_windows_without_outputs():
    from repro.runtime import DarKnightConfig

    entry = {
        "meta": {"window_id": 0, "shard_id": 0, "status": STATUS_RETRIED},
        "leaves": WindowCommitment.build(
            0, [_batch(0, [1], dim=16)], [None], status=STATUS_RETRIED
        ).leaves,
    }
    with pytest.raises(AuditError):
        replay_window(entry, _net(), DarKnightConfig(seed=0))


def test_replay_refuses_empty_windows():
    from repro.runtime import DarKnightConfig

    entry = {"meta": {"window_id": 0, "shard_id": 0}, "leaves": []}
    with pytest.raises(AuditError):
        replay_window(entry, _net(), DarKnightConfig(seed=0))


def test_hand_spliced_leaf_blob_matches_the_generic_encoder():
    """The hot-path leaf splice must stay byte-identical to
    ``canonical_json_bytes`` for every value shape a leaf can carry —
    exotic tenants, repr-edge floats, missing outputs."""
    from repro.audit.commitment import _leaf_blob, canonical_json_bytes

    record = canonical_array(np.arange(6, dtype=np.float32).reshape(2, 3))
    for tenant, arrival, output in [
        ("t0", 0.0, "ab" * 32),
        ('we"ird\\ten\nant', 0.1 + 0.2, None),
        ("unicode-é中", 1e-300, "00" * 32),
        ("x", 123456789.987654321, None),
        ("y", 5e-324, "ff" * 32),
    ]:
        leaf = {
            "request_id": 7,
            "tenant": tenant,
            "batch_id": 3,
            "arrival_time": arrival,
            "status": "ok",
            "retries": 2,
            "input": record,
            "input_digest": "cd" * 32,
            "output_digest": output,
        }
        assert _leaf_blob(leaf) == canonical_json_bytes(leaf)


def test_entry_lines_on_disk_match_a_generic_json_dump(tmp_path):
    """The spliced JSONL line must parse back to exactly the in-memory
    entry (and re-dump identically), or recovery tooling would diverge."""
    log = _filled_log(0, 3, tmp_path / "log.jsonl")
    lines = (tmp_path / "log.jsonl").read_text().splitlines()
    assert len(lines) == 3
    for line, entry in zip(lines, log.entries):
        assert json.loads(line) == entry
        assert line == json.dumps(entry, sort_keys=True, separators=(",", ":"))
