"""Tests for dynamic virtual-batch coalescing (flush on size-or-timeout)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import PendingRequest, RequestQueue, VirtualBatchScheduler


def _push(queue, request_id, tenant="t0", t=0.0):
    queue.push(
        PendingRequest(
            request_id=request_id,
            tenant=tenant,
            x=np.zeros(4),
            arrival_time=t,
            enqueue_time=t,
        )
    )


@pytest.fixture()
def queue():
    return RequestQueue(capacity=64)


def test_size_triggered_flush_fills_batches(queue):
    sched = VirtualBatchScheduler(queue, batch_size=4, max_wait=0.01)
    for i in range(9):
        _push(queue, i)
    batches = sched.collect_ready(now=0.0)
    assert [b.n_requests for b in batches] == [4, 4]
    assert all(b.trigger == "size" for b in batches)
    assert all(b.fill_ratio == 1.0 for b in batches)
    assert queue.depth == 1  # the ragged tail waits for its deadline


def test_partial_batch_never_flushes_on_size(queue):
    sched = VirtualBatchScheduler(queue, batch_size=4, max_wait=0.01)
    for i in range(3):
        _push(queue, i)
    assert sched.collect_ready(now=0.0) == []
    assert queue.depth == 3


def test_deadline_flushes_partial_batch_at_the_deadline(queue):
    sched = VirtualBatchScheduler(queue, batch_size=4, max_wait=0.01)
    _push(queue, 0, t=0.0)
    _push(queue, 1, t=0.002)
    # Before the oldest request's deadline: nothing fires.
    assert sched.collect_expired(now=0.009) == []
    batches = sched.collect_expired(now=0.05)
    assert len(batches) == 1
    (batch,) = batches
    assert batch.trigger == "deadline"
    assert batch.n_requests == 2
    assert batch.fill_ratio == 0.5  # padded up to K inside the backend
    assert batch.flush_time == pytest.approx(0.01)  # oldest enqueue + max_wait
    assert queue.depth == 0


def test_drain_with_infinite_horizon_flushes_everything(queue):
    sched = VirtualBatchScheduler(queue, batch_size=4, max_wait=0.01)
    for i in range(6):
        _push(queue, i, t=0.001 * i)
    batches = sched.collect_expired(now=math.inf)
    assert [b.n_requests for b in batches] == [4, 2]
    assert queue.depth == 0
    assert all(math.isfinite(b.flush_time) for b in batches)


def test_fairness_under_saturating_tenant(queue):
    """A flooding tenant cannot push the quiet tenant out of early batches."""
    sched = VirtualBatchScheduler(queue, batch_size=4, max_wait=0.01)
    for i in range(12):
        _push(queue, i, tenant="hog")
    for i in range(3):
        _push(queue, 100 + i, tenant="mouse")
    batches = sched.collect_ready(now=0.0)
    assert len(batches) == 3
    # Round-robin draining spreads the mouse across the first batches
    # instead of leaving it behind 12 hog requests.
    for batch in batches[:2]:
        tenants = [r.tenant for r in batch.requests]
        assert "mouse" in tenants, tenants


def test_per_request_mode_keeps_enclave_slot_accounting(queue):
    """batch_size=1 dispatches alone, but each batch still occupies K slots."""
    sched = VirtualBatchScheduler(queue, batch_size=1, max_wait=0.01, slots=4)
    for i in range(3):
        _push(queue, i)
    batches = sched.collect_ready(now=0.0)
    assert [b.n_requests for b in batches] == [1, 1, 1]
    assert all(b.slots == 4 for b in batches)
    assert all(b.fill_ratio == 0.25 for b in batches)


def test_batch_ids_are_monotonic(queue):
    sched = VirtualBatchScheduler(queue, batch_size=2, max_wait=0.01)
    for i in range(6):
        _push(queue, i)
    ids = [b.batch_id for b in sched.collect_ready(now=0.0)]
    assert ids == [0, 1, 2]
    assert sched.batches_scheduled == 3


def test_invalid_parameters_rejected(queue):
    with pytest.raises(ConfigurationError):
        VirtualBatchScheduler(queue, batch_size=0)
    with pytest.raises(ConfigurationError):
        VirtualBatchScheduler(queue, batch_size=2, max_wait=0.0)
