"""Smoke tests: every shipped example runs to completion."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_directory_is_populated():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "private_training", "integrity_verification",
            "collusion_attack", "paper_report", "full_cloud_session"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} printed nothing"
