"""Tests for the per-table/figure experiment harnesses."""

import pytest

from repro.perf import (
    TABLE2_HEADERS,
    build_timeline,
    fig3_series,
    fig4_series,
    fig5_series,
    fig6a_series,
    fig6b_series,
    fig7_series,
    headline_speedups,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
)


def test_table1_rows_structure_and_values():
    rows = table1_rows()
    assert [r["operation"] for r in rows] == ["Forward Pass", "Backward Propagation"]
    fwd, bwd = rows
    assert fwd["linear"] == pytest.approx(126.85, rel=0.02)
    assert fwd["relu"] == pytest.approx(119.60, rel=0.02)
    assert bwd["linear"] == pytest.approx(149.13, rel=0.02)
    assert bwd["maxpool"] == pytest.approx(5.47, rel=0.02)
    assert fwd["total"] == pytest.approx(119.03, rel=0.05)
    assert bwd["total"] == pytest.approx(124.56, rel=0.05)


def test_table2_matches_paper_matrix():
    rows = table2_rows()
    assert len(rows) == 11
    assert len(rows[0]) == len(TABLE2_HEADERS)
    by_name = {r[0]: r for r in rows}
    # DarKnight: the only row with training + TEE + integrity + GPU + large DNNs.
    dk = by_name["DarKnight"]
    assert dk[1] == "•" and dk[6] == "•" and dk[10] == "•" and dk[11] == "•" and dk[12] == "•"
    # Slalom: inference only.
    assert by_name["Slalom"][1] == "◦"
    assert by_name["Slalom"][2] == "•"


def test_table3_rows():
    rows = table3_rows()
    assert {r["model"] for r in rows} == {"VGG16", "ResNet50", "MobileNetV2"}
    for row in rows:
        assert sum(row["darknight"].values()) == pytest.approx(1.0)
        assert sum(row["baseline"].values()) == pytest.approx(1.0)
        assert row["baseline"]["encode_decode"] == 0.0
        assert row["baseline"]["communication"] == 0.0


def test_table4_rows():
    rows = table4_rows()
    for row in rows:
        assert row["speedup_over_darknight"] > 10
        assert row["speedup_over_sgx"] > row["speedup_over_darknight"]


def test_fig3_series_shape():
    series = fig3_series()
    for model, speedups in series.items():
        assert speedups[4] > speedups[2] > 1.0
        assert speedups[5] < speedups[4], model


def test_fig5_series_shape():
    series = fig5_series()
    for model, values in series.items():
        assert values["pipelined"] >= values["non_pipelined"]
        assert values["linear_speedup_pipelined"] > values["linear_speedup_non_pipelined"]
    # Paper: pipelined linear speedups span roughly 20-158x.
    lins = [v["linear_speedup_pipelined"] for v in series.values()]
    assert max(lins) > 50
    assert min(lins) > 10


def test_fig6a_series_shape():
    series = fig6a_series()
    for model, values in series.items():
        assert values["SGX"] == 1.0
        assert values["DarKnight(4)"] > values["Slalom"] > 1.0
        assert values["Slalom"] > values["Slalom+Integrity"]
        assert values["DarKnight(4)"] > values["DarKnight(3)+Integrity"]


def test_fig6b_series_shape():
    series = fig6b_series()
    total = series["Total"]
    assert total[1] == pytest.approx(1.0)
    assert total[4] > total[2] > 1.0
    assert total[6] < total[4]  # EPC overflow past the knee
    # Blinding/unblinding improve with K too (amortised noise shares).
    assert series["Blinding"][4] > 1.0
    assert series["Unblinding"][4] > 1.0


def test_fig7_series_shape():
    series = fig7_series()
    assert series[1] == pytest.approx(1.0)
    assert series[2] > 1.5
    assert series[4] > series[3] > series[2]


def test_fig4_series_tiny_run_has_matching_curves():
    results = fig4_series(
        models=("MiniVGG",), epochs=2, n_train=32, n_test=16,
        batch_size=8, image_size=8, width=8, seed=0,
    )
    curves = results["MiniVGG"]
    assert len(curves["raw"]) == 2
    assert len(curves["darknight"]) == 2
    # Both runs produce valid accuracies; closeness asserted in integration.
    for accs in curves.values():
        assert all(0.0 <= a <= 1.0 for a in accs)


def test_headline_speedups():
    headline = headline_speedups()
    # Paper abstract: 6.5x training / 12.5x inference averages.
    assert headline["training_speedup_avg"] == pytest.approx(6.5, rel=0.5)
    assert headline["inference_speedup_avg"] == pytest.approx(12.5, rel=0.5)


def test_timeline_consistency():
    from repro.models import vgg16_spec
    from repro.perf import CostModel
    from repro.runtime import DarKnightConfig

    dk = CostModel().darknight_training(vgg16_spec(), DarKnightConfig(virtual_batch_size=2))
    tl = build_timeline(dk)
    assert tl.non_pipelined == pytest.approx(dk.total)
    assert tl.pipelined == pytest.approx(max(tl.tee_stream, tl.gpu_stream, tl.link_stream))
    assert tl.pipeline_gain >= 1.0
