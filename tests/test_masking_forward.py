"""Property tests: forward masking decodes exactly (Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.fieldmath import FieldRng, PrimeField, field_matmul
from repro.masking import CoefficientSet, ForwardDecoder, ForwardEncoder


def _roundtrip(k, m, extra, features, out_features, seed):
    field = PrimeField()
    rng = FieldRng(field, seed)
    coeffs = CoefficientSet.generate(rng, k=k, m=m, extra_shares=extra)
    encoder = ForwardEncoder(coeffs, rng)
    x = rng.uniform((k, features))
    batch = encoder.encode(x)
    w = rng.uniform((out_features, features))
    outputs = np.stack(
        [field_matmul(field, w, batch.shares[j].reshape(-1, 1)).ravel()
         for j in range(coeffs.n_shares)]
    )
    decoded = ForwardDecoder(coeffs).decode(outputs)
    expected = np.stack(
        [field_matmul(field, w, xi.reshape(-1, 1)).ravel() for xi in x]
    )
    return decoded, expected, batch, coeffs, outputs


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(1, 4),
    m=st.integers(1, 2),
    extra=st.integers(0, 1),
    seed=st.integers(0, 5000),
)
def test_decode_recovers_exact_linear_results(k, m, extra, seed):
    decoded, expected, *_ = _roundtrip(k, m, extra, features=6, out_features=3, seed=seed)
    assert np.array_equal(decoded, expected)


def test_every_share_subset_decodes_identically(frng, field):
    decoded, expected, batch, coeffs, outputs = _roundtrip(2, 1, 1, 5, 4, seed=3)
    decoder = ForwardDecoder(coeffs)
    for subset in coeffs.iter_decoding_subsets():
        assert np.array_equal(decoder.decode(outputs, subset=subset), expected)


def test_noise_product_returned_consistently(frng):
    _, _, batch, coeffs, outputs = _roundtrip(2, 1, 1, 5, 4, seed=4)
    decoder = ForwardDecoder(coeffs)
    results, noise_products = decoder.decode(outputs, return_noise_product=True)
    assert noise_products.shape[0] == coeffs.m


def test_multidimensional_feature_shapes(frng, field):
    coeffs = CoefficientSet.generate(frng, k=2, m=1)
    encoder = ForwardEncoder(coeffs, frng)
    x = frng.uniform((2, 3, 4, 4))  # conv-shaped inputs
    batch = encoder.encode(x)
    assert batch.shares.shape == (3, 3, 4, 4)
    assert batch.feature_shape == (3, 4, 4)
    assert np.array_equal(batch.share_for_gpu(1), batch.shares[1])


def test_encode_accepts_predrawn_noise(frng):
    coeffs = CoefficientSet.generate(frng, k=2, m=1)
    encoder = ForwardEncoder(coeffs, frng)
    x = frng.uniform((2, 5))
    noise = frng.uniform((1, 5))
    b1 = encoder.encode(x, noise=noise)
    b2 = encoder.encode(x, noise=noise)
    assert np.array_equal(b1.shares, b2.shares)


def test_encode_input_validation(frng, field):
    coeffs = CoefficientSet.generate(frng, k=2, m=1)
    encoder = ForwardEncoder(coeffs, frng)
    with pytest.raises(EncodingError):
        encoder.encode(frng.uniform((3, 5)))  # wrong K
    with pytest.raises(EncodingError):
        encoder.encode(np.array([[0.5, 1.5]]))  # not field elements
    with pytest.raises(EncodingError):
        encoder.encode(frng.uniform((2, 5)), noise=frng.uniform((2, 5)))  # wrong M


def test_decode_requires_all_share_rows(frng):
    coeffs = CoefficientSet.generate(frng, k=2, m=1, extra_shares=1)
    decoder = ForwardDecoder(coeffs)
    with pytest.raises(DecodingError):
        decoder.decode(frng.uniform((2, 5)))


def test_shares_differ_from_inputs(frng):
    """Masked shares never equal the raw inputs (they are blinded)."""
    coeffs = CoefficientSet.generate(frng, k=2, m=1)
    x = frng.uniform((2, 64))
    batch = ForwardEncoder(coeffs, frng).encode(x)
    for share in batch.shares:
        for xi in x:
            assert not np.array_equal(share, xi)
