"""Tests for the DarKnight TEE+GPU backend (the paper's Section 3.1 flow)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecodingError, IntegrityError
from repro.gpu import GpuCluster, RandomTamper
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, PlainBackend, ReLU, Sequential
from repro.runtime import DarKnightBackend, DarKnightConfig


@pytest.fixture()
def net(nprng):
    return Sequential(
        [
            Conv2D(1, 3, 3, 1, 1, rng=nprng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(3 * 3 * 3, 4, rng=nprng),
        ],
        input_shape=(1, 6, 6),
    )


def _backend(k=2, **kwargs):
    cfg = DarKnightConfig(virtual_batch_size=k, seed=11, **kwargs)
    return DarKnightBackend(cfg)


def test_forward_matches_float_within_quantization(net, nprng):
    backend = _backend(validate_decode=True)
    x = nprng.normal(size=(4, 1, 6, 6))
    out_dk = net.forward(x, backend)
    out_plain = net.forward(x, PlainBackend())
    assert np.max(np.abs(out_dk - out_plain)) < 0.1
    backend.end_batch()


def test_masked_decode_is_exact_vs_quantized_reference(nprng):
    """The masked path must equal quantize->float-compute->dequantize exactly."""
    backend = _backend()
    q = backend.quantizer
    x = nprng.normal(size=(2, 8))
    w = nprng.normal(size=(8, 3))
    out = backend.dense_forward(x, w, None, key="dense_test")
    xs, xn = backend._normalize(x)
    ws, wn = backend._normalize(w)
    xq = q.field.to_signed(q.quantize(xs)).astype(np.float64)
    wq = q.field.to_signed(q.quantize(ws)).astype(np.float64)
    ref = np.floor(xq @ wq / q.scale + 0.5) / q.scale * (xn.factor * wn.factor)
    assert np.allclose(out, ref, atol=1e-12)
    backend.end_batch()


def test_ragged_batch_padding(net, nprng):
    """Batch size not divisible by K: padded rows are dropped exactly."""
    backend = _backend(k=4)
    x = nprng.normal(size=(5, 1, 6, 6))
    out = net.forward(x, backend)
    assert out.shape[0] == 5
    out_ref = net.forward(x, PlainBackend())
    assert np.max(np.abs(out - out_ref)) < 0.1
    backend.end_batch()


def test_backward_grad_w_matches_plain(net, nprng):
    x = nprng.normal(size=(4, 1, 6, 6))
    grad_out = nprng.normal(size=(4, 4)) * 0.1

    backend = _backend(validate_decode=True)
    net.forward(x, backend)
    net.backward(grad_out, backend)
    dk_grads = {
        f"{layer.name}/{n}": g.copy()
        for layer, _, _ in net.parameters()
        for n, g in layer.grads.items()
    }
    backend.end_batch()

    net.forward(x, PlainBackend())
    net.backward(grad_out, PlainBackend())
    for layer, _, _ in net.parameters():
        for n, g in layer.grads.items():
            got = dk_grads[f"{layer.name}/{n}"]
            scale = np.max(np.abs(g)) + 1e-3
            assert np.max(np.abs(got - g)) < 0.05 * scale + 0.02, (layer.name, n)


def test_grad_w_without_forward_raises(nprng):
    backend = _backend()
    with pytest.raises(DecodingError):
        backend.dense_grad_w(
            nprng.normal(size=(2, 4)), nprng.normal(size=(2, 3)), key="never-ran"
        )


def test_end_batch_clears_gpu_shares(net, nprng):
    backend = _backend()
    x = nprng.normal(size=(2, 1, 6, 6))
    net.forward(x, backend)
    assert any(dev.stored_shares for dev in backend.cluster.devices)
    backend.end_batch()
    assert all(not dev.stored_shares for dev in backend.cluster.devices)
    assert backend._forward_store == {}


def test_integrity_passes_with_honest_gpus(net, nprng):
    backend = _backend(integrity=True)
    x = nprng.normal(size=(2, 1, 6, 6))
    out = net.forward(x, backend)
    net.backward(nprng.normal(size=(2, 4)) * 0.1, backend)
    assert out.shape == (2, 4)
    backend.end_batch()


def test_integrity_detects_malicious_gpu(nprng):
    cfg = DarKnightConfig(virtual_batch_size=2, integrity=True, seed=3)
    from repro.fieldmath import PrimeField

    field = PrimeField()
    cluster = GpuCluster(
        field,
        cfg.n_gpus_required,
        fault_injectors={1: RandomTamper(field, probability=1.0, seed=0)},
    )
    backend = DarKnightBackend(cfg, cluster=cluster)
    x = nprng.normal(size=(2, 8))
    w = nprng.normal(size=(8, 3))
    with pytest.raises(IntegrityError):
        backend.dense_forward(x, w, None, key="d")


def test_without_integrity_tamper_corrupts_silently(nprng):
    """Control: no integrity share -> sabotage goes undetected (and wrong)."""
    cfg = DarKnightConfig(virtual_batch_size=2, integrity=False, seed=3)
    from repro.fieldmath import PrimeField

    field = PrimeField()
    cluster = GpuCluster(
        field,
        cfg.n_gpus_required,
        fault_injectors={0: RandomTamper(field, probability=1.0, n_entries=5, seed=0)},
    )
    backend = DarKnightBackend(cfg, cluster=cluster)
    x = nprng.normal(size=(2, 8))
    w = nprng.normal(size=(8, 3))
    out = backend.dense_forward(x, w, None, key="d")
    assert not np.allclose(out, x @ w, atol=0.1)


def test_collusion_tolerance_raises_gpu_count(nprng):
    cfg = DarKnightConfig(virtual_batch_size=2, collusion_tolerance=2, seed=5)
    assert cfg.n_gpus_required == 4
    backend = DarKnightBackend(cfg)
    x = nprng.normal(size=(2, 6))
    w = nprng.normal(size=(6, 2))
    out = backend.dense_forward(x, w, None, key="d")
    assert np.max(np.abs(out - x @ w)) < 0.1


def test_each_gpu_sees_one_uniformish_share(net, nprng):
    backend = _backend()
    x = nprng.normal(size=(2, 1, 6, 6))
    net.forward(x, backend)
    # Every device that received data holds exactly one share per layer key.
    for dev in backend.cluster.devices:
        for key, share in dev.stored_shares.items():
            assert share.shape in {(1, 6, 6), (27,)}  # conv input or flat dense input
    backend.end_batch()


def test_link_and_ledger_accounting(net, nprng):
    backend = _backend()
    x = nprng.normal(size=(2, 1, 6, 6))
    net.forward(x, backend)
    net.backward(nprng.normal(size=(2, 4)) * 0.1, backend)
    assert backend.link.total_bytes > 0
    assert backend.cluster.total_mac_ops() > 0
    assert backend.enclave.ledger.op_counts["encode_forward"] > 0
    assert backend.enclave.ledger.op_counts["decode_forward"] > 0
    assert backend.enclave.ledger.op_counts["decode_backward"] > 0
    backend.end_batch()


def test_sealed_aggregation_matches_in_memory(nprng):
    x = nprng.normal(size=(4, 6))
    w = nprng.normal(size=(6, 3))
    delta = nprng.normal(size=(4, 3)) * 0.1

    plain = _backend(k=2)
    plain.dense_forward(x, w, None, key="d")
    grad_plain = plain.dense_grad_w(x, delta, key="d")

    sealed = _backend(k=2, sealed_aggregation=True)
    sealed.dense_forward(x, w, None, key="d")
    grad_sealed = sealed.dense_grad_w(x, delta, key="d")
    assert np.allclose(grad_plain, grad_sealed, atol=1e-9)
    assert sealed.enclave.ledger.sealed_bytes > 0


def test_config_validation():
    with pytest.raises(ConfigurationError):
        DarKnightConfig(virtual_batch_size=0)
    with pytest.raises(ConfigurationError):
        DarKnightConfig(collusion_tolerance=0)
    with pytest.raises(ConfigurationError):
        DarKnightConfig(fractional_bits=0)


def test_config_share_accounting():
    cfg = DarKnightConfig(virtual_batch_size=4, collusion_tolerance=1, integrity=True)
    assert cfg.extra_shares == 1
    assert cfg.n_shares == 6
    assert cfg.n_gpus_required == 6


def test_coefficient_cache_skips_regeneration(nprng):
    """With fresh_coefficients=False, same-shape batches reuse one set."""
    backend = _backend(k=2, fresh_coefficients=False)
    x = nprng.normal(size=(4, 8))
    w = nprng.normal(size=(8, 3))
    for step in range(3):
        backend.dense_forward(x, w, None, key="d")
        backend.end_batch()
    counts = backend.enclave.ledger.op_counts
    assert counts.get("generate_coefficients") == 1
    # 3 steps x 2 virtual batches = 6 encodes, 5 of them from the cache.
    assert counts.get("reuse_coefficients") == 5


def test_coefficient_cache_preserves_correctness(nprng):
    """Cached coefficients decode exactly like fresh ones."""
    x = nprng.normal(size=(4, 8))
    w = nprng.normal(size=(8, 3))
    cached = _backend(k=2, fresh_coefficients=False, validate_decode=True)
    for _ in range(2):
        out = cached.dense_forward(x, w, None, key="d")
        cached.end_batch()
    plain = x @ w
    assert np.max(np.abs(out - plain)) < 0.05


def test_fresh_coefficients_default_regenerates_every_batch(nprng):
    backend = _backend(k=2)
    x = nprng.normal(size=(4, 8))
    w = nprng.normal(size=(8, 3))
    for _ in range(2):
        backend.dense_forward(x, w, None, key="d")
        backend.end_batch()
    counts = backend.enclave.ledger.op_counts
    assert counts.get("generate_coefficients") == 4
    assert "reuse_coefficients" not in counts


def test_cached_coefficients_keep_noise_fresh(nprng):
    """Reusing A/B/Gamma must not reuse the per-encode noise vectors."""
    backend = _backend(k=2, fresh_coefficients=False)
    x = nprng.normal(size=(2, 8))
    w = nprng.normal(size=(8, 3))
    backend.dense_forward(x, w, None, key="d")
    share_a = backend.cluster[0].stored_shares["d/step0/vb0"].copy()
    backend.end_batch()
    backend.dense_forward(x, w, None, key="d")
    share_b = backend.cluster[0].stored_shares["d/step1/vb0"].copy()
    backend.end_batch()
    assert not np.array_equal(share_a, share_b)
