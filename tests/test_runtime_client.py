"""Tests for client attestation + encrypted data provisioning (Fig. 1)."""

import numpy as np
import pytest

from repro.comm import Envelope, LinkModel
from repro.enclave import Enclave
from repro.errors import AttestationError, CommunicationError
from repro.runtime import ClientSession


@pytest.fixture()
def enclave():
    return Enclave(code_identity="darknight-enclave-v1", seed=0)


def test_connect_and_provision_roundtrip(enclave, nprng):
    session = ClientSession.connect(enclave, rng=nprng)
    x = nprng.normal(size=(4, 3, 8, 8))
    y = nprng.integers(0, 10, 4)
    got_x, got_y = session.provision(x, y)
    assert np.array_equal(got_x, x)
    assert np.array_equal(got_y, y)
    assert session.batches_sent == 1
    # The upload crossed the (modeled) wire and was accounted by the enclave.
    assert session.link.total_bytes > x.nbytes
    assert enclave.ledger.op_counts["ecall:client_upload"] == 1
    assert enclave.ledger.op_counts["decrypt_client_batch"] == 1


def test_client_refuses_wrong_enclave(nprng):
    evil = Enclave(code_identity="evil-enclave", seed=0)
    with pytest.raises(AttestationError):
        ClientSession.connect(evil, expected_code_identity="darknight-enclave-v1", rng=nprng)


def test_wire_carries_only_ciphertext(enclave, nprng):
    session = ClientSession.connect(enclave, rng=nprng)
    x = nprng.normal(size=(2, 4))
    batch = session.upload_batch(x, np.array([0, 1]))
    assert x.tobytes() not in batch.data.ciphertext.data


def test_tampered_upload_rejected(enclave, nprng):
    session = ClientSession.connect(enclave, rng=nprng)
    batch = session.upload_batch(nprng.normal(size=(2, 4)), np.array([0, 1]))
    ct = batch.data.ciphertext
    forged = type(batch)(
        data=Envelope(
            ciphertext=type(ct)(
                nonce=ct.nonce, data=b"\xff" + ct.data[1:], tag=ct.tag, aad=ct.aad
            ),
            dtype=batch.data.dtype,
            shape=batch.data.shape,
        ),
        labels=batch.labels,
    )
    with pytest.raises(CommunicationError):
        session.receiver.receive_batch(forged)


def test_batch_shape_validation(enclave, nprng):
    session = ClientSession.connect(enclave, rng=nprng)
    with pytest.raises(CommunicationError):
        session.upload_batch(nprng.normal(size=(3, 4)), np.array([0, 1]))


def test_custom_link_is_used(enclave, nprng):
    link = LinkModel(bandwidth_bytes_per_s=1e6)
    session = ClientSession.connect(enclave, link=link, rng=nprng)
    session.upload_batch(nprng.normal(size=(2, 4)), np.array([0, 1]))
    assert link.total_bytes > 0


def test_multiple_batches(enclave, nprng):
    session = ClientSession.connect(enclave, rng=nprng)
    for i in range(3):
        x = nprng.normal(size=(2, 4))
        got_x, _ = session.provision(x, np.array([0, 1]))
        assert np.array_equal(got_x, x)
    assert session.batches_sent == 3
