"""Tests for Algorithm 1 fixed-point quantization and dynamic normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quantization import (
    IDENTITY,
    DynamicNormalizer,
    Normalization,
    QuantizationConfig,
    round_half_up,
)


def test_round_half_up_ties_go_up():
    values = np.array([0.5, 1.5, -0.5, -1.5, 2.4, -2.4])
    assert round_half_up(values).tolist() == [1.0, 2.0, 0.0, -1.0, 2.0, -2.0]


def test_config_validation():
    with pytest.raises(QuantizationError):
        QuantizationConfig(fractional_bits=0)
    with pytest.raises(QuantizationError):
        QuantizationConfig(fractional_bits=13)  # 2*13 bits >= field headroom


def test_scales():
    q = QuantizationConfig(fractional_bits=8)
    assert q.scale == 256
    assert q.product_scale == 65536
    assert q.resolution == 1 / 256
    assert q.quantization_error_bound() == 0.5 / 256


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=32
    )
)
def test_quantize_dequantize_roundtrip_within_resolution(values):
    q = QuantizationConfig()
    arr = np.array(values)
    recovered = q.dequantize(q.quantize(arr))
    assert np.all(np.abs(recovered - arr) <= q.quantization_error_bound() + 1e-12)


def test_bias_uses_product_scale(field):
    q = QuantizationConfig()
    bias = np.array([0.5, -0.25])
    encoded = q.quantize(bias, bias=True)
    assert np.array_equal(
        field.to_signed(encoded), (bias * q.product_scale).astype(np.int64)
    )


def test_product_dequantization_matches_reference():
    q = QuantizationConfig()
    x = np.array([0.5, -1.25])
    w = np.array([0.75, 0.5])
    xq = q.quantize(x)
    wq = q.quantize(w)
    prod = q.field.mul(xq, wq)  # elementwise product at scale 2^2l
    back = q.dequantize_product(prod)
    assert np.all(np.abs(back - x * w) < 0.01)


def test_overflow_raises_with_context():
    q = QuantizationConfig()
    with pytest.raises(QuantizationError, match="fractional_bits"):
        q.quantize(np.array([1e6]))


def test_saturate_clips_instead():
    q = QuantizationConfig(saturate=True)
    out = q.quantize(np.array([1e9, -1e9]))
    signed = q.field.to_signed(out)
    assert signed[0] == q.field.half
    assert signed[1] == -q.field.half


def test_headroom_and_max_safe_product():
    q = QuantizationConfig()
    assert q.headroom(q.max_safe_product()) == pytest.approx(1.0)
    assert q.headroom(q.max_safe_product() * 2) == pytest.approx(2.0)


def test_quantize_weights_alias():
    q = QuantizationConfig()
    w = np.array([0.1, -0.2])
    assert np.array_equal(q.quantize_weights(w), q.quantize(w))


# ----------------------------------------------------------------------
# dynamic normalisation
# ----------------------------------------------------------------------
def test_normalizer_leaves_small_tensors_alone():
    norm = DynamicNormalizer()
    x = np.array([0.5, -0.9])
    scaled, n = norm.normalize(x)
    assert n is IDENTITY
    assert np.array_equal(scaled, x)


def test_normalizer_scales_to_ceiling():
    norm = DynamicNormalizer(ceiling=1.0)
    x = np.array([4.0, -2.0])
    scaled, n = norm.normalize(x)
    assert np.max(np.abs(scaled)) == pytest.approx(1.0)
    assert n.factor == pytest.approx(4.0)


def test_normalization_product_unapply():
    a = Normalization(3.0)
    b = Normalization(2.0)
    product = np.array([1.0])
    assert a.unapply_product(product, b)[0] == pytest.approx(6.0)
    assert IDENTITY.unapply_product(product, IDENTITY)[0] == pytest.approx(1.0)


def test_normalizer_rejects_bad_ceiling():
    with pytest.raises(QuantizationError):
        DynamicNormalizer(ceiling=0.0)


def test_normalizer_zero_tensor():
    scaled, n = DynamicNormalizer().normalize(np.zeros(4))
    assert n is IDENTITY
    assert np.array_equal(scaled, np.zeros(4))


def test_normalized_quantized_linear_op_roundtrip():
    # End-to-end: normalise, quantize, multiply in field, dequantize, unapply.
    q = QuantizationConfig()
    norm = DynamicNormalizer()
    rng = np.random.default_rng(0)
    x = rng.normal(scale=5.0, size=(8,))
    w = rng.normal(scale=3.0, size=(8,))
    xs, xn = norm.normalize(x)
    ws, wn = norm.normalize(w)
    prod_field = q.field.mul(q.quantize(xs), q.quantize(ws))
    recovered = q.dequantize_product(prod_field) * (xn.factor * wn.factor)
    assert np.all(np.abs(recovered - x * w) < np.abs(x * w) * 0.1 + 0.5)
