"""Membership-change events as first-class chained audit entries.

A shard's service life — ``provision`` (join), ``drain`` (wind-down),
``retire`` (leave) — is committed to its *own* chain with a
``membership:<kind>`` status window, so auditors walking the chain see
exactly when the shard served and an operator cannot splice a shard's
life out of the record.  These tests cover the trail surface
(``record_membership`` / ``membership_events``), the guards (unknown
kinds and shards, replay of computation-free windows), the server's
elastic paths firing the events, and the ``check-chain`` CLI printing
the merged membership history.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.audit import (
    MEMBERSHIP_KINDS,
    AuditConfig,
    AuditTrail,
    WindowCommitment,
    prove,
    replay_window,
    verify_proof,
)
from repro.cli import main
from repro.errors import AuditError
from repro.nn import Dense, ReLU, Sequential
from repro.runtime import DarKnightConfig
from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace


def _trail(num_shards=2, log_dir=None):
    return AuditTrail(
        AuditConfig(log_dir=None if log_dir is None else str(log_dir), model="tiny"),
        DarKnightConfig(virtual_batch_size=2, seed=0),
        num_shards=num_shards,
    )


def _batch(batch_id, rids, dim=4):
    rng = np.random.default_rng(batch_id)
    return SimpleNamespace(
        batch_id=batch_id,
        requests=[
            SimpleNamespace(
                request_id=r, tenant="t0", x=rng.normal(size=dim), arrival_time=0.0
            )
            for r in rids
        ],
        flush_time=1.0 + batch_id,
        retries=0,
    )


def _commit_served_window(trail, shard_id, batch_id=0, rids=(0, 1)):
    batch = _batch(batch_id, list(rids))
    outputs = [np.stack([np.arange(4.0) + r for r in rids])]
    return trail.commit_window(shard_id, [batch], [outputs[0]], status="completed")


# ----------------------------------------------------------------------
# trail surface
# ----------------------------------------------------------------------
def test_membership_events_chain_and_verify():
    trail = _trail()
    _commit_served_window(trail, 0, batch_id=0, rids=(0, 1))
    trail.record_membership("drain", 0, now=3.0)
    trail.record_membership("retire", 0, now=4.0, details={"reason": "scale-in"})
    trail.record_membership("provision", 1, now=0.5)
    # Membership windows are first-class: counted and chain-verified.
    assert trail.membership_events == 3
    assert trail.windows_committed == 4
    assert trail.verify() == trail.windows_committed

    events = trail.logs[0].membership_events()
    assert [e["kind"] for e in events] == ["drain", "retire"]
    assert [e["time"] for e in events] == [3.0, 4.0]
    assert events[1]["details"] == {"reason": "scale-in"}
    assert all(e["shard_id"] == 0 for e in events)
    assert trail.logs[1].membership_events()[0]["kind"] == "provision"


def test_unknown_membership_kind_is_rejected():
    trail = _trail()
    assert set(MEMBERSHIP_KINDS) == {"provision", "drain", "retire"}
    with pytest.raises(AuditError, match="unknown membership event kind"):
        trail.record_membership("reboot", 0)
    with pytest.raises(AuditError, match="no log for shard"):
        trail.record_membership("drain", 7)


def test_membership_windows_refuse_replay_but_not_proofs():
    net = Sequential([Dense(4, 4, rng=np.random.default_rng(0))], (4,))
    trail = _trail()
    _commit_served_window(trail, 0, batch_id=0, rids=(0, 1))
    trail.record_membership("drain", 0, now=2.0)
    log = trail.logs[0]
    # There is no computation behind a membership window.
    with pytest.raises(AuditError, match="membership event"):
        replay_window(log.entries[1], net, trail.darknight)
    # Proofs still work: the query skips the event leaf and finds the
    # served request on the same chain.
    proof = prove(log, request_id=1)
    assert verify_proof(proof, log.chain_root)
    with pytest.raises(AuditError):
        prove(log, request_id=99)


def test_forged_membership_kind_fails_chain_verification():
    with pytest.raises(AuditError, match="unknown membership event kind"):
        WindowCommitment.build_membership(shard_id=0, kind="resurrect", time=0.0)


# ----------------------------------------------------------------------
# server elastic paths
# ----------------------------------------------------------------------
def _tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def test_elastic_membership_is_audit_visible(tmp_path):
    config = ServingConfig(
        darknight=DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=1),
        audit=AuditConfig(log_dir=str(tmp_path)),
        queue_capacity=64,
    )
    server = PrivateInferenceServer(_tiny_net(), config)
    trace = synthetic_trace(8, (16,), n_tenants=2, mean_interarrival=1e-4, seed=11)
    server.serve_trace(trace)
    sid = server.provision_shard(now=1.0)
    server.decommission_shard(sid, now=2.0)
    kinds = [e["kind"] for e in server.audit.logs[sid].membership_events()]
    assert kinds == ["provision", "drain", "retire"]
    assert server.audit.verify() == server.audit.windows_committed


def test_check_chain_prints_the_membership_history(tmp_path, capsys):
    trail = _trail(log_dir=tmp_path)
    _commit_served_window(trail, 0)
    trail.record_membership("provision", 1, now=0.5)
    trail.record_membership("drain", 1, now=2.0)
    trail.record_membership("retire", 1, now=3.0)
    rc = main(["audit", "check-chain", "--log-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "chain OK" in out
    assert "membership history (3 chained event(s)):" in out
    lines = [line for line in out.splitlines() if line.startswith("  t=")]
    assert [line.split()[3] for line in lines] == ["provision", "drain", "retire"]
    assert all("shard 1" in line for line in lines)
