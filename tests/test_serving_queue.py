"""Tests for the bounded multi-tenant request queue."""

import numpy as np
import pytest

from repro.errors import BackpressureError, ConfigurationError
from repro.serving import PendingRequest, RequestQueue


def _req(request_id, tenant="t0", t=0.0):
    return PendingRequest(
        request_id=request_id,
        tenant=tenant,
        x=np.zeros(4),
        arrival_time=t,
        enqueue_time=t,
    )


def test_single_tenant_fifo_order():
    q = RequestQueue(capacity=8)
    for i in range(5):
        q.push(_req(i))
    assert [r.request_id for r in q.pop_fair(5)] == [0, 1, 2, 3, 4]
    assert q.depth == 0


def test_round_robin_interleaves_tenants():
    q = RequestQueue(capacity=32)
    for i in range(10):
        q.push(_req(i, tenant="hog"))
    for i in range(2):
        q.push(_req(100 + i, tenant="mouse"))
    popped = q.pop_fair(4)
    # One per tenant per rotation: the saturating tenant cannot fill a batch.
    assert [r.tenant for r in popped] == ["hog", "mouse", "hog", "mouse"]


def test_rotation_resumes_where_it_stopped():
    q = RequestQueue(capacity=32)
    for tenant in ("a", "b", "c"):
        for i in range(3):
            q.push(_req(i, tenant=tenant))
    first = [r.tenant for r in q.pop_fair(2)]
    second = [r.tenant for r in q.pop_fair(2)]
    assert first == ["a", "b"]
    assert second == ["c", "a"]


def test_backpressure_sheds_beyond_capacity():
    q = RequestQueue(capacity=3)
    for i in range(3):
        q.push(_req(i))
    with pytest.raises(BackpressureError):
        q.push(_req(99))
    assert q.shed_count == 1
    assert q.depth == 3
    # Draining frees capacity again.
    q.pop_fair(1)
    q.push(_req(4))
    assert q.depth == 3


def test_oldest_enqueue_time_tracks_heads():
    q = RequestQueue(capacity=8)
    assert q.oldest_enqueue_time() is None
    q.push(_req(0, tenant="a", t=1.0))
    q.push(_req(1, tenant="b", t=0.5))
    assert q.oldest_enqueue_time() == 0.5
    q.pop_fair(1)  # pops tenant a first (arrival order of tenants)
    assert q.oldest_enqueue_time() == 0.5
    assert q.depth_by_tenant() == {"b": 1}


def test_invalid_capacity_rejected():
    with pytest.raises(ConfigurationError):
        RequestQueue(capacity=0)


def test_new_tenant_mid_rotation_cannot_jump_the_turn_order():
    """Regression: the old integer cursor re-mapped onto a grown tenant
    list, letting a brand-new tenant serve ahead of tenants already
    waiting their turn (and double-serving others)."""
    q = RequestQueue(capacity=32)
    for tenant in ("a", "b"):
        for i in range(3):
            q.push(_req(i, tenant=tenant))
    assert [r.tenant for r in q.pop_fair(2)] == ["a", "b"]
    # A third tenant arrives mid-rotation: it must queue *behind* the
    # rotation, not hijack the next slot.
    q.push(_req(9, tenant="c"))
    assert [r.tenant for r in q.pop_fair(3)] == ["a", "b", "c"]


def test_idle_tenants_are_pruned_from_the_rotation():
    """A tenant that drained leaves the rotation entirely and re-enters
    at the back when it next pushes — it cannot hold a phantom turn."""
    q = RequestQueue(capacity=32)
    for i in range(4):
        q.push(_req(i, tenant="a"))
    q.push(_req(10, tenant="b"))
    assert [r.tenant for r in q.pop_fair(2)] == ["a", "b"]
    # b is drained: only a serves, without phantom-b rotation stalls.
    assert [r.tenant for r in q.pop_fair(2)] == ["a", "a"]
    # b returns and waits one a-turn, exactly as a fresh tenant would.
    q.push(_req(11, tenant="b"))
    assert [r.tenant for r in q.pop_fair(2)] == ["a", "b"]
    assert q.depth == 0
    # The seen-tenant listing (first-arrival order) is unaffected.
    assert q.tenants == ["a", "b"]


# ----------------------------------------------------------------------
# class-weighted fair draining (deficit round-robin)
# ----------------------------------------------------------------------
def _weighted_policy(weights):
    from repro.serving import SloClass, SloPolicy

    classes = {
        name: SloClass(name=name, drain_weight=w) for name, w in weights.items()
    }
    return SloPolicy(
        classes=classes, assignments={name: name for name in weights}
    )


def test_default_weight_is_bit_identical_to_classic_rotation():
    """With every class at drain_weight=1 (or no policy), the deficit
    round-robin must pop the exact same sequence as the old
    one-request-per-turn rotation."""
    plain = RequestQueue(capacity=64)
    weighted = RequestQueue(capacity=64, slo=_weighted_policy({"a": 1.0, "b": 1.0}))
    for q in (plain, weighted):
        for i in range(6):
            q.push(_req(i, tenant="a"))
        for i in range(3):
            q.push(_req(100 + i, tenant="b"))
    for n in (4, 3, 2):
        assert [r.request_id for r in plain.pop_fair(n)] == [
            r.request_id for r in weighted.pop_fair(n)
        ]


def test_premium_tenant_drains_proportionally_under_contention():
    q = RequestQueue(capacity=64, slo=_weighted_policy({"prem": 3.0, "std": 1.0}))
    for i in range(12):
        q.push(_req(i, tenant="prem"))
        q.push(_req(100 + i, tenant="std"))
    out = q.pop_fair(8)
    by_tenant = {}
    for r in out:
        by_tenant[r.tenant] = by_tenant.get(r.tenant, 0) + 1
    # 3:1 split of an 8-slot window, both backlogs deep enough.
    assert by_tenant == {"prem": 6, "std": 2}
    # FIFO within each tenant survives the weighting.
    assert [r.request_id for r in out if r.tenant == "prem"] == list(range(6))


def test_fractional_weights_accumulate_as_deficit_credit():
    q = RequestQueue(capacity=64, slo=_weighted_policy({"fast": 1.5, "slow": 1.0}))
    for i in range(12):
        q.push(_req(i, tenant="fast"))
        q.push(_req(100 + i, tenant="slow"))
    counts = {"fast": 0, "slow": 0}
    for _ in range(4):
        for r in q.pop_fair(3):
            counts[r.tenant] += 1
    # 1.5 credit/turn: fast's turns alternate 1 and 2 pops as the 0.5
    # fractions bank up, landing at 7:5 over twelve slots — within one
    # turn of the ideal 1.5:1 split, which a one-per-turn rotation
    # (6:6) can never reach.
    assert counts == {"fast": 7, "slow": 5}


def test_drained_tenant_forfeits_banked_credit():
    q = RequestQueue(capacity=64, slo=_weighted_policy({"fast": 1.5}))
    q.push(_req(0, tenant="fast"))
    q.push(_req(100, tenant="other"))
    q.push(_req(1, tenant="fast"))
    # fast's turn pops 1 (credit 1.5 -> leftover 0.5 banked)...
    assert [r.request_id for r in q.pop_fair(2)] == [0, 100]
    # ...then pops the last one and drains; its 0.5 carry must die with
    # the rotation entry rather than resurrect on re-activation.
    assert [r.request_id for r in q.pop_fair(2)] == [1]
    q.push(_req(2, tenant="fast"))
    q.push(_req(3, tenant="fast"))
    q.push(_req(4, tenant="fast"))
    # Fresh activation: 1.5 credit again -> one pop, not two.
    q.push(_req(101, tenant="other"))
    popped = q.pop_fair(2)
    assert [r.request_id for r in popped] == [2, 101]


def test_weight_below_one_is_rejected():
    from repro.serving import SloClass

    with pytest.raises(ConfigurationError):
        SloClass(name="thin", drain_weight=0.5)


# ----------------------------------------------------------------------
# per-class admission quotas
# ----------------------------------------------------------------------
def _quota_policy(shares, priorities=None):
    from repro.serving import SloClass, SloPolicy

    priorities = priorities or {}
    classes = {
        name: SloClass(
            name=name, admission_share=s, priority=priorities.get(name, 0)
        )
        for name, s in shares.items()
    }
    return SloPolicy(classes=classes, assignments={name: name for name in shares})


def test_quota_caps_a_class_at_its_share_of_capacity():
    from repro.errors import QuotaExceededError

    q = RequestQueue(capacity=8, slo=_quota_policy({"bulk": 0.25, "prem": 1.0}))
    q.push(_req(0, tenant="bulk"))
    q.push(_req(1, tenant="bulk"))
    # 0.25 * 8 = 2 slots: the third bulk arrival is refused even though
    # the queue itself has plenty of room.
    with pytest.raises(QuotaExceededError):
        q.push(_req(2, tenant="bulk"))
    assert q.quota_shed_count == 1
    assert q.shed_count == 1
    assert q.depth == 2
    # Other classes are unaffected.
    for i in range(6):
        q.push(_req(100 + i, tenant="prem"))
    assert q.depth == 8


def test_quota_slots_are_released_on_drain():
    from repro.errors import QuotaExceededError

    q = RequestQueue(capacity=8, slo=_quota_policy({"bulk": 0.25}))
    q.push(_req(0, tenant="bulk"))
    q.push(_req(1, tenant="bulk"))
    with pytest.raises(QuotaExceededError):
        q.push(_req(2, tenant="bulk"))
    q.pop_fair(1)
    q.push(_req(3, tenant="bulk"))  # freed slot admits again
    assert q.depth_by_class() == {"bulk": 2}


def test_quota_slots_are_released_on_eviction():
    from repro.errors import QuotaExceededError

    policy = _quota_policy(
        {"bulk": 0.5, "prem": 1.0}, priorities={"bulk": 0, "prem": 1}
    )
    q = RequestQueue(capacity=4, slo=policy)
    q.push(_req(0, tenant="bulk"))
    q.push(_req(1, tenant="bulk"))
    with pytest.raises(QuotaExceededError):
        q.push(_req(2, tenant="bulk"))
    for i in range(2):
        q.push(_req(100 + i, tenant="prem"))
    # Full queue: premium evicts the newest bulk request, and the quota
    # accounting must follow the victim out of the queue.
    evicted = q.push(_req(102, tenant="prem"))
    assert evicted is not None and evicted.tenant == "bulk"
    assert q.depth_by_class() == {"bulk": 1, "prem": 3}
    q.pop_fair(1)  # bulk is first in rotation
    q.push(_req(3, tenant="bulk"))  # back under its 2-slot cap


def test_over_quota_class_cannot_evict_to_grow():
    """The quota check runs before eviction: a premium flood with a
    share cap cannot push every best-effort request out of the queue."""
    from repro.errors import QuotaExceededError

    policy = _quota_policy(
        {"bulk": 1.0, "prem": 0.5}, priorities={"bulk": 0, "prem": 1}
    )
    q = RequestQueue(capacity=4, slo=policy)
    for i in range(2):
        q.push(_req(i, tenant="bulk"))
    q.push(_req(100, tenant="prem"))
    q.push(_req(101, tenant="prem"))
    # Queue full AND prem at its 2-slot cap: without the quota this
    # arrival would evict bulk request 1; with it, the arrival sheds.
    with pytest.raises(QuotaExceededError):
        q.push(_req(102, tenant="prem"))
    assert q.evicted_count == 0
    assert q.depth_by_class() == {"bulk": 2, "prem": 2}


def test_quota_always_grants_at_least_one_slot():
    q = RequestQueue(capacity=4, slo=_quota_policy({"tiny": 0.01}))
    q.push(_req(0, tenant="tiny"))  # int(0.01 * 4) == 0, floored to 1
    assert q.depth == 1


def test_full_share_class_never_hits_the_quota_path():
    q = RequestQueue(capacity=4, slo=_quota_policy({"std": 1.0}))
    for i in range(4):
        q.push(_req(i, tenant="std"))
    with pytest.raises(BackpressureError):
        q.push(_req(9, tenant="std"))
    assert q.quota_shed_count == 0
