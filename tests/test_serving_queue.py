"""Tests for the bounded multi-tenant request queue."""

import numpy as np
import pytest

from repro.errors import BackpressureError, ConfigurationError
from repro.serving import PendingRequest, RequestQueue


def _req(request_id, tenant="t0", t=0.0):
    return PendingRequest(
        request_id=request_id,
        tenant=tenant,
        x=np.zeros(4),
        arrival_time=t,
        enqueue_time=t,
    )


def test_single_tenant_fifo_order():
    q = RequestQueue(capacity=8)
    for i in range(5):
        q.push(_req(i))
    assert [r.request_id for r in q.pop_fair(5)] == [0, 1, 2, 3, 4]
    assert q.depth == 0


def test_round_robin_interleaves_tenants():
    q = RequestQueue(capacity=32)
    for i in range(10):
        q.push(_req(i, tenant="hog"))
    for i in range(2):
        q.push(_req(100 + i, tenant="mouse"))
    popped = q.pop_fair(4)
    # One per tenant per rotation: the saturating tenant cannot fill a batch.
    assert [r.tenant for r in popped] == ["hog", "mouse", "hog", "mouse"]


def test_rotation_resumes_where_it_stopped():
    q = RequestQueue(capacity=32)
    for tenant in ("a", "b", "c"):
        for i in range(3):
            q.push(_req(i, tenant=tenant))
    first = [r.tenant for r in q.pop_fair(2)]
    second = [r.tenant for r in q.pop_fair(2)]
    assert first == ["a", "b"]
    assert second == ["c", "a"]


def test_backpressure_sheds_beyond_capacity():
    q = RequestQueue(capacity=3)
    for i in range(3):
        q.push(_req(i))
    with pytest.raises(BackpressureError):
        q.push(_req(99))
    assert q.shed_count == 1
    assert q.depth == 3
    # Draining frees capacity again.
    q.pop_fair(1)
    q.push(_req(4))
    assert q.depth == 3


def test_oldest_enqueue_time_tracks_heads():
    q = RequestQueue(capacity=8)
    assert q.oldest_enqueue_time() is None
    q.push(_req(0, tenant="a", t=1.0))
    q.push(_req(1, tenant="b", t=0.5))
    assert q.oldest_enqueue_time() == 0.5
    q.pop_fair(1)  # pops tenant a first (arrival order of tenants)
    assert q.oldest_enqueue_time() == 0.5
    assert q.depth_by_tenant() == {"b": 1}


def test_invalid_capacity_rejected():
    with pytest.raises(ConfigurationError):
        RequestQueue(capacity=0)


def test_new_tenant_mid_rotation_cannot_jump_the_turn_order():
    """Regression: the old integer cursor re-mapped onto a grown tenant
    list, letting a brand-new tenant serve ahead of tenants already
    waiting their turn (and double-serving others)."""
    q = RequestQueue(capacity=32)
    for tenant in ("a", "b"):
        for i in range(3):
            q.push(_req(i, tenant=tenant))
    assert [r.tenant for r in q.pop_fair(2)] == ["a", "b"]
    # A third tenant arrives mid-rotation: it must queue *behind* the
    # rotation, not hijack the next slot.
    q.push(_req(9, tenant="c"))
    assert [r.tenant for r in q.pop_fair(3)] == ["a", "b", "c"]


def test_idle_tenants_are_pruned_from_the_rotation():
    """A tenant that drained leaves the rotation entirely and re-enters
    at the back when it next pushes — it cannot hold a phantom turn."""
    q = RequestQueue(capacity=32)
    for i in range(4):
        q.push(_req(i, tenant="a"))
    q.push(_req(10, tenant="b"))
    assert [r.tenant for r in q.pop_fair(2)] == ["a", "b"]
    # b is drained: only a serves, without phantom-b rotation stalls.
    assert [r.tenant for r in q.pop_fair(2)] == ["a", "a"]
    # b returns and waits one a-turn, exactly as a fresh tenant would.
    q.push(_req(11, tenant="b"))
    assert [r.tenant for r in q.pop_fair(2)] == ["a", "b"]
    assert q.depth == 0
    # The seen-tenant listing (first-arrival order) is unaffected.
    assert q.tenants == ["a", "b"]
