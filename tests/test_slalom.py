"""Tests for the Slalom baseline: blinded inference, no-training, Freivalds."""

import numpy as np
import pytest

from repro.enclave import Enclave
from repro.errors import EncodingError, IntegrityError
from repro.fieldmath import field_matmul
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, PlainBackend, ReLU, Sequential
from repro.slalom import (
    BlindingStore,
    SlalomBackend,
    SlalomTrainingError,
    freivalds_check,
    freivalds_macs,
)


@pytest.fixture()
def net(nprng):
    return Sequential(
        [
            Conv2D(1, 3, 3, 1, 1, rng=nprng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(3 * 3 * 3, 4, rng=nprng),
        ],
        input_shape=(1, 6, 6),
    )


def test_inference_matches_float_within_quantization(net, nprng):
    backend = SlalomBackend()
    x = nprng.normal(size=(3, 1, 6, 6))
    out_s = net.forward(x, backend, training=False)
    out_p = net.forward(x, PlainBackend(), training=False)
    assert np.max(np.abs(out_s - out_p)) < 0.1


def test_blinded_share_differs_from_input(field, nprng):
    enclave = Enclave(seed=0)
    store = BlindingStore(enclave)
    q = np.abs(nprng.integers(0, field.p, size=(8,))).astype(np.int64)
    store.precompute("l", 1, (8,), lambda r: r, macs_per_op=8)
    pair = store.next_pair("l")
    blinded = store.blind(q, pair)
    assert not np.array_equal(blinded, q)
    assert np.array_equal(store.unblind(blinded, pair), q)


def test_training_raises_with_explanation(net, nprng):
    backend = SlalomBackend()
    x = nprng.normal(size=(2, 1, 6, 6))
    net.forward(x, backend, training=True)
    with pytest.raises(SlalomTrainingError, match="Section 7.2"):
        net.backward(np.ones((2, 4)), backend)


def test_all_grad_ops_refused(nprng):
    backend = SlalomBackend()
    with pytest.raises(SlalomTrainingError):
        backend.conv2d_grad_w(None, None, 3, 3, 1, 1, "k")
    with pytest.raises(SlalomTrainingError):
        backend.conv2d_grad_x(None, None, None, 1, 1, "k")
    with pytest.raises(SlalomTrainingError):
        backend.dense_grad_w(None, None, "k")
    with pytest.raises(SlalomTrainingError):
        backend.dense_grad_x(None, None, "k")


def test_weight_change_invalidates_pool_and_reprecomputes(net, nprng):
    backend = SlalomBackend()
    x = nprng.normal(size=(2, 1, 6, 6))
    net.forward(x, backend, training=False)
    offline_before = backend.store.offline_macs
    net.layers[0].params["w"] += 0.05
    out = net.forward(x, backend, training=False)  # must re-run offline phase
    assert backend.store.offline_macs > offline_before
    out_ref = net.forward(x, PlainBackend(), training=False)
    assert np.max(np.abs(out - out_ref)) < 0.1


def test_stale_pool_refused_directly(nprng):
    enclave = Enclave(seed=0)
    store = BlindingStore(enclave)
    store.precompute("l", 1, (4,), lambda r: r, macs_per_op=4, weight_version=0)
    with pytest.raises(EncodingError, match="cannot train"):
        store.next_pair("l", weight_version=1)


def test_pool_exhaustion(nprng):
    enclave = Enclave(seed=0)
    store = BlindingStore(enclave)
    store.precompute("l", 2, (4,), lambda r: r, macs_per_op=4)
    store.next_pair("l")
    store.next_pair("l")
    with pytest.raises(EncodingError, match="exhausted"):
        store.next_pair("l")


def test_pairs_are_one_time(nprng):
    enclave = Enclave(seed=0)
    store = BlindingStore(enclave)
    store.precompute("l", 2, (4,), lambda r: r, macs_per_op=4)
    p1 = store.next_pair("l")
    p2 = store.next_pair("l")
    assert not np.array_equal(p1.r, p2.r)


def test_blinding_pairs_sealed_in_untrusted_store(nprng):
    enclave = Enclave(seed=0)
    store = BlindingStore(enclave)
    store.precompute("l", 1, (4,), lambda r: r, macs_per_op=4)
    assert len(enclave.untrusted_store.keys()) == 2  # r and u


def test_integrity_freivalds_passes_honest(net, nprng):
    backend = SlalomBackend(integrity=True)
    x = nprng.normal(size=(2, 1, 6, 6))
    out = net.forward(x, backend, training=False)
    assert out.shape == (2, 4)


def test_freivalds_detects_tamper(field, frng):
    w = frng.uniform((4, 6))
    x = frng.uniform((6, 5))
    y = field_matmul(field, w, x)
    assert freivalds_check(field, w, x, y, frng)
    bad = y.copy()
    bad[1, 2] = field.add(bad[1, 2], 3)
    # One trial misses with probability 1/p; run a few to be sure.
    assert not freivalds_check(field, w, x, bad, frng, trials=4)


def test_freivalds_shape_validation(field, frng):
    with pytest.raises(IntegrityError):
        freivalds_check(field, frng.uniform((2, 3)), frng.uniform((4, 5)),
                        frng.uniform((2, 5)), frng)


def test_freivalds_macs_formula():
    assert freivalds_macs(4, 6, 5) == 4 * 5 + 4 * 6 + 6 * 5
    assert freivalds_macs(4, 6, 5, trials=2) == 2 * (4 * 5 + 4 * 6 + 6 * 5)


def test_blinding_validation(nprng):
    enclave = Enclave(seed=0)
    store = BlindingStore(enclave)
    with pytest.raises(EncodingError):
        store.precompute("l", 0, (4,), lambda r: r, macs_per_op=1)
    store.precompute("l", 1, (4,), lambda r: r, macs_per_op=1)
    pair = store.next_pair("l")
    with pytest.raises(EncodingError):
        store.blind(np.zeros(5, dtype=np.int64), pair)
    with pytest.raises(EncodingError):
        store.unblind(np.zeros(5, dtype=np.int64), pair)
