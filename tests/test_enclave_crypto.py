"""Tests for the toy AEAD, key exchange and serialisation helpers."""

import numpy as np
import pytest

from repro.enclave import (
    DiffieHellman,
    StreamAead,
    array_to_bytes,
    bytes_to_array,
    derive_key,
)
from repro.errors import CommunicationError


def test_derive_key_deterministic_and_distinct():
    k1 = derive_key(b"a", b"b")
    k2 = derive_key(b"a", b"b")
    k3 = derive_key(b"ab", b"")  # length-prefixing prevents concat collisions
    assert k1 == k2
    assert k1 != k3
    assert len(k1) == 32


def test_aead_roundtrip(nprng):
    aead = StreamAead(derive_key(b"secret"), nprng)
    plaintext = b"the quick brown fox" * 10
    ct = aead.encrypt(plaintext, aad=b"header")
    assert ct.data != plaintext
    assert aead.decrypt(ct) == plaintext


def test_aead_detects_ciphertext_tamper(nprng):
    aead = StreamAead(derive_key(b"secret"), nprng)
    ct = aead.encrypt(b"hello world")
    bad = type(ct)(nonce=ct.nonce, data=b"X" + ct.data[1:], tag=ct.tag, aad=ct.aad)
    with pytest.raises(CommunicationError):
        aead.decrypt(bad)


def test_aead_detects_aad_tamper(nprng):
    aead = StreamAead(derive_key(b"secret"), nprng)
    ct = aead.encrypt(b"hello", aad=b"v1")
    bad = type(ct)(nonce=ct.nonce, data=ct.data, tag=ct.tag, aad=b"v2")
    with pytest.raises(CommunicationError):
        aead.decrypt(bad)


def test_aead_nonces_fresh_per_message(nprng):
    aead = StreamAead(derive_key(b"secret"), nprng)
    a = aead.encrypt(b"same plaintext")
    b = aead.encrypt(b"same plaintext")
    assert a.nonce != b.nonce
    assert a.data != b.data


def test_aead_rejects_short_key():
    with pytest.raises(CommunicationError):
        StreamAead(b"short")


def test_ciphertext_nbytes(nprng):
    aead = StreamAead(derive_key(b"k"), nprng)
    ct = aead.encrypt(b"12345678", aad=b"aa")
    assert ct.nbytes == len(ct.nonce) + len(ct.data) + len(ct.tag) + len(ct.aad)


def test_dh_agreement(nprng):
    alice = DiffieHellman(nprng)
    bob = DiffieHellman(nprng)
    assert alice.shared_key(bob.public) == bob.shared_key(alice.public)


def test_dh_distinct_sessions(nprng):
    a1, b1 = DiffieHellman(nprng), DiffieHellman(nprng)
    a2, b2 = DiffieHellman(nprng), DiffieHellman(nprng)
    assert a1.shared_key(b1.public) != a2.shared_key(b2.public)


def test_dh_rejects_bad_public(nprng):
    with pytest.raises(CommunicationError):
        DiffieHellman(nprng).shared_key(1)


@pytest.mark.parametrize("dtype", [np.int64, np.float64, np.int32])
def test_array_serialisation_roundtrip(dtype, nprng):
    arr = (nprng.normal(size=(3, 4, 5)) * 100).astype(dtype)
    data, meta = array_to_bytes(arr)
    back = bytes_to_array(data, meta)
    assert back.dtype == arr.dtype
    assert np.array_equal(back, arr)
