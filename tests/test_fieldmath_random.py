"""Tests for the seeded field sampler."""

import numpy as np
import pytest

from repro.errors import FieldError
from repro.fieldmath import FieldRng, is_invertible


def test_determinism_with_same_seed(field):
    a = FieldRng(field, seed=7).uniform((4, 4))
    b = FieldRng(field, seed=7).uniform((4, 4))
    assert np.array_equal(a, b)


def test_different_seeds_differ(field):
    a = FieldRng(field, seed=7).uniform((64,))
    b = FieldRng(field, seed=8).uniform((64,))
    assert not np.array_equal(a, b)


def test_spawn_creates_independent_stream(field):
    parent = FieldRng(field, seed=7)
    child = parent.spawn()
    assert not np.array_equal(parent.uniform((32,)), child.uniform((32,)))


def test_nonzero_never_zero(frng):
    assert np.all(frng.nonzero((500,)) > 0)


def test_noise_matrix_shape_and_validation(frng):
    r = frng.noise_matrix(10, 3)
    assert r.shape == (10, 3)
    with pytest.raises(FieldError):
        frng.noise_matrix(0, 3)
    with pytest.raises(FieldError):
        frng.noise_matrix(5, -1)


def test_distinct_nonzero(frng):
    pts = frng.distinct_nonzero(100)
    assert len(set(pts.tolist())) == 100
    assert np.all(pts > 0)


def test_distinct_nonzero_exhaustion(small_field):
    rng = FieldRng(small_field, seed=1)
    with pytest.raises(FieldError):
        rng.distinct_nonzero(small_field.p)


def test_invertible_matrix(frng, field):
    m = frng.invertible_matrix(6)
    assert is_invertible(field, m)


def test_invertible_diagonal(frng):
    d = frng.invertible_diagonal(5)
    assert np.all(np.diag(d) > 0)
    assert np.count_nonzero(d - np.diag(np.diag(d))) == 0


def test_generator_exposed(frng):
    assert isinstance(frng.generator, np.random.Generator)
