"""Tests for the link model and secure channels."""

import numpy as np
import pytest

from repro.comm import (
    INFINIBAND_40G_BYTES_PER_S,
    Envelope,
    LinkModel,
    SecureChannel,
)
from repro.errors import CommunicationError, ConfigurationError


def test_default_link_is_40gbps():
    link = LinkModel()
    assert link.bandwidth_bytes_per_s == INFINIBAND_40G_BYTES_PER_S == 5e9


def test_transfer_time_law():
    link = LinkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-6)
    assert link.transfer_time(0) == pytest.approx(1e-6)
    assert link.transfer_time(1e9) == pytest.approx(1.000001)


def test_transfer_logging_and_totals():
    link = LinkModel()
    link.transfer("enclave", "gpu0", 1000)
    link.transfer("gpu0", "enclave", 500)
    assert link.total_bytes == 1500
    assert link.total_seconds > 0
    assert len(link.records) == 2
    assert link.records[0].src == "enclave"
    link.reset()
    assert link.total_bytes == 0


def test_link_validation():
    with pytest.raises(ConfigurationError):
        LinkModel(bandwidth_bytes_per_s=0)
    with pytest.raises(ConfigurationError):
        LinkModel(latency_s=-1)
    with pytest.raises(ConfigurationError):
        LinkModel().transfer_time(-5)


def test_secure_channel_roundtrip(nprng):
    link = LinkModel()
    tee, gpu = SecureChannel.establish_pair("enclave", "gpu0", link, nprng)
    payload = nprng.normal(size=(4, 4))
    env = tee.send_array(payload)
    assert np.array_equal(gpu.recv_array(env), payload)
    # Handshake (2x32B) + the envelope crossed the link.
    assert link.total_bytes >= 64 + env.nbytes


def test_secure_channel_detects_tamper(nprng):
    link = LinkModel()
    tee, gpu = SecureChannel.establish_pair("enclave", "gpu0", link, nprng)
    env = tee.send_array(np.ones(8))
    ct = env.ciphertext
    bad = Envelope(
        ciphertext=type(ct)(
            nonce=ct.nonce, data=b"\x00" + ct.data[1:], tag=ct.tag, aad=ct.aad
        ),
        dtype=env.dtype,
        shape=env.shape,
    )
    with pytest.raises(CommunicationError):
        gpu.recv_array(bad)


def test_third_party_cannot_read(nprng):
    link = LinkModel()
    tee, _gpu = SecureChannel.establish_pair("enclave", "gpu0", link, nprng)
    _, eve = SecureChannel.establish_pair("enclave", "eve", link, nprng)
    env = tee.send_array(np.ones(4))
    with pytest.raises(CommunicationError):
        eve.recv_array(env)
