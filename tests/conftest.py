"""Shared fixtures for the DarKnight reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fieldmath import FieldRng, PrimeField


@pytest.fixture(scope="session")
def field() -> PrimeField:
    """The paper's field, shared across the whole run (stateless)."""
    return PrimeField()


@pytest.fixture()
def frng(field) -> FieldRng:
    """A fresh deterministic field sampler per test."""
    return FieldRng(field, seed=1234)


@pytest.fixture()
def nprng() -> np.random.Generator:
    """A fresh deterministic numpy generator per test."""
    return np.random.default_rng(99)


@pytest.fixture()
def small_field() -> PrimeField:
    """A small prime field where exhaustive checks are cheap."""
    return PrimeField(p=10007)
