"""Tests for the event-driven pipeline simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.models import vgg16_spec
from repro.perf import (
    CostModel,
    Stage,
    build_timeline,
    darknight_stage_chain,
    simulate,
    simulate_darknight_training,
)
from repro.runtime import DarKnightConfig

CHAIN = darknight_stage_chain(
    encode=1.0, scatter=0.5, compute=2.0, gather=0.5, decode_nonlinear=3.0
)


def test_non_pipelined_makespan_is_sum():
    result = simulate(CHAIN, n_batches=4, pipelined=False)
    assert result.makespan == pytest.approx(4 * 7.0)
    assert len(result.events) == 4 * 5


def test_pipelined_steady_state_is_bottleneck_bound():
    """Makespan -> bottleneck * n + fill; TEE (1+3=4s/batch) is the bottleneck."""
    n = 32
    result = simulate(CHAIN, n_batches=n, pipelined=True)
    bottleneck = 4.0  # tee: encode 1.0 + decode/nonlinear 3.0 per batch
    assert result.makespan >= bottleneck * n
    assert result.makespan <= bottleneck * n + 7.0  # one chain's worth of fill


def test_pipelined_never_slower_than_serial():
    for n in (1, 2, 5, 16):
        serial = simulate(CHAIN, n, pipelined=False).makespan
        piped = simulate(CHAIN, n, pipelined=True).makespan
        assert piped <= serial + 1e-12
    # Single batch: no overlap opportunity, identical makespans.
    assert simulate(CHAIN, 1, True).makespan == pytest.approx(
        simulate(CHAIN, 1, False).makespan
    )


def test_no_resource_double_booking():
    result = simulate(CHAIN, n_batches=10, pipelined=True)
    for resource in ("tee", "link", "gpu"):
        intervals = sorted(
            (e.start, e.end)
            for e in result.events
            if e.stage.resource == resource
        )
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-12, f"{resource} double-booked"


def test_stage_dependencies_respected():
    result = simulate(CHAIN, n_batches=6, pipelined=True)
    by_batch: dict[int, list] = {}
    for event in result.events:
        by_batch.setdefault(event.batch, []).append(event)
    order = {s.name: i for i, s in enumerate(CHAIN)}
    for events in by_batch.values():
        events.sort(key=lambda e: order[e.stage.name])
        for a, b in zip(events, events[1:]):
            assert b.start >= a.end - 1e-12


def test_utilisation_of_bottleneck_approaches_one():
    result = simulate(CHAIN, n_batches=64, pipelined=True)
    assert result.utilisation("tee") > 0.9
    assert result.utilisation("gpu") < result.utilisation("tee")


@settings(max_examples=25, deadline=None)
@given(
    durations=st.lists(st.floats(0.0, 5.0), min_size=5, max_size=5),
    n=st.integers(1, 12),
)
def test_simulator_invariants_hold_for_any_durations(durations, n):
    chain = darknight_stage_chain(*durations)
    serial = simulate(chain, n, pipelined=False)
    piped = simulate(chain, n, pipelined=True)
    assert serial.makespan == pytest.approx(n * sum(durations))
    assert piped.makespan <= serial.makespan + 1e-9
    # Pipelined can never beat the per-resource lower bound.
    for resource in ("tee", "link", "gpu"):
        busy = serial.resource_busy_time(resource)
        assert piped.makespan >= busy - 1e-9


def test_validation():
    with pytest.raises(ConfigurationError):
        simulate([], 3, True)
    with pytest.raises(ConfigurationError):
        simulate(CHAIN, 0, True)
    with pytest.raises(ConfigurationError):
        Stage("bad", "quantum", 1.0)
    with pytest.raises(ConfigurationError):
        Stage("bad", "tee", -1.0)


def test_event_simulation_confirms_analytical_pipeline_model():
    """The Fig. 5 claim, earned: the analytical max-stream number is the
    asymptotic lower bound of the simulated pipelined schedule, which
    approaches it from above as batches amortise the fill (greedy list
    scheduling on a flow shop carries a small inherent overhead)."""
    cm = CostModel()
    breakdown = cm.darknight_training(vgg16_spec(), DarKnightConfig(virtual_batch_size=2))
    timeline = build_timeline(breakdown)
    per_batch = {}
    for n in (16, 64, 256):
        result = simulate_darknight_training(breakdown, n_batches=n, pipelined=True)
        per_batch[n] = result.makespan / n
        # Never below the bottleneck bound, never far above it.
        assert per_batch[n] >= timeline.pipelined - 1e-12
        assert per_batch[n] <= timeline.pipelined * 1.25
    # Converges toward the analytical bound as the pipeline fills.
    assert per_batch[256] < per_batch[64] < per_batch[16]
    serial = simulate_darknight_training(breakdown, n_batches=64, pipelined=False)
    assert serial.makespan / 64 == pytest.approx(timeline.non_pipelined, rel=1e-6)
