"""Tests for the staged pipeline engine: encode/dispatch/decode scheduling.

Covers the three load-bearing claims of the refactor:

1. pipelined execution is *bit-identical* to the synchronous path at every
   depth (masking decodes exactly, so schedule order cannot change logits);
2. with a compute-heavy model, overlapping enclave encode/decode with GPU
   kernels shortens the simulated makespan;
3. encodings are released on every exit path — including aborts mid-network
   — and ``end_batch`` is idempotent.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.fieldmath import PrimeField
from repro.gpu import GpuCluster, RandomTamper, TargetedTamper
from repro.masking import iter_virtual_batches
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.pipeline import EnclaveTimeline, PipelineExecutor, StageCostModel
from repro.runtime import DarKnightBackend, DarKnightConfig
from repro.runtime.inference import PrivateInferenceEngine


def _mixed_net(seed=0):
    """Conv + dense stack exercising offloaded and TEE-resident steps."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(2, 4, 3, 1, 1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(4 * 4 * 4, 10, rng=rng),
            ReLU(),
            Dense(10, 4, rng=rng),
        ],
        (2, 8, 8),
    )


def _conv_heavy_net(seed=0, width=12, n_convs=4):
    """A conv stack big enough that GPU kernel time rivals encode/decode."""
    rng = np.random.default_rng(seed)
    layers = [Conv2D(4, width, 3, 1, 1, rng=rng), ReLU()]
    for _ in range(n_convs - 1):
        layers += [Conv2D(width, width, 3, 1, 1, rng=rng), ReLU()]
    layers += [Flatten(), Dense(width * 12 * 12, 4, rng=rng)]
    return Sequential(layers, (4, 12, 12))


def _backend(seed=11, **kwargs):
    return DarKnightBackend(
        DarKnightConfig(virtual_batch_size=4, seed=seed, **kwargs)
    )


# ----------------------------------------------------------------------
# bit-identity across depths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("depth", [1, 2, 4])
def test_pipelined_logits_bit_identical_to_sync(depth, nprng):
    net = _mixed_net()
    x = nprng.normal(size=(11, 2, 8, 8))  # padded tail at K=4

    sync = _backend()
    reference = net.forward(x, sync, training=False)
    sync.end_batch()

    backend = _backend()
    result = PipelineExecutor(net, backend, pipeline_depth=depth).run(x)
    backend.end_batch()
    assert np.array_equal(result.output, reference)
    assert result.stats.n_jobs == 3


def test_engine_run_batch_bit_identical_across_depths(nprng):
    net = _mixed_net()
    x = nprng.normal(size=(9, 2, 8, 8))
    logits = []
    for depth in (1, 2, 3):
        engine = PrivateInferenceEngine(
            net, DarKnightConfig(virtual_batch_size=4, seed=3), pipeline_depth=depth
        )
        logits.append(engine.run_batch(x))
        engine.backend.assert_encodings_released()
    assert np.array_equal(logits[0], logits[1])
    assert np.array_equal(logits[0], logits[2])


def test_execution_plan_marks_offloaded_steps():
    net = _mixed_net()
    plan = net.execution_plan()
    assert [s.offloaded for s in plan] == [True, False, False, False, True, False, True]
    assert [s.index for s in plan] == list(range(7))
    assert plan[0].name == net.layers[0].name


# ----------------------------------------------------------------------
# overlap shortens the simulated makespan
# ----------------------------------------------------------------------
def test_pipeline_overlap_beats_synchronous_schedule(nprng):
    net = _conv_heavy_net()
    x = nprng.normal(size=(24, 4, 12, 12))  # 6 virtual batches at K=4
    # Price stages so one conv share's kernel rivals its encode+decode —
    # the balanced regime the paper's Fig. 7 overlap argument targets.
    costs = StageCostModel(stage_overhead=5e-5, gpu_mac_throughput=5e8)

    def makespan(depth):
        backend = _backend()
        result = PipelineExecutor(
            net, backend, pipeline_depth=depth, costs=costs
        ).run(x)
        backend.end_batch()
        return result.output, result.stats

    out_sync, sync_stats = makespan(1)
    out_pipe, pipe_stats = makespan(4)
    assert np.array_equal(out_sync, out_pipe)
    speedup = sync_stats.makespan / pipe_stats.makespan
    assert speedup > 1.5, f"pipelining speedup only {speedup:.2f}x"
    # Overlap shows up as higher utilization of both resources.
    assert pipe_stats.enclave_utilization > sync_stats.enclave_utilization
    assert pipe_stats.gpu_utilization > sync_stats.gpu_utilization


def test_depth_one_schedule_is_fully_serialized(nprng):
    """At depth 1 no two stage spans may overlap — the synchronous order."""
    net = _mixed_net()
    backend = _backend()
    result = PipelineExecutor(net, backend, pipeline_depth=1).run(
        nprng.normal(size=(8, 2, 8, 8))
    )
    backend.end_batch()
    spans = sorted(result.stats.spans, key=lambda s: s.start)
    for earlier, later in zip(spans, spans[1:]):
        assert later.start >= earlier.end - 1e-12


def test_batch_window_overlaps_consecutive_batches(nprng):
    """Batch n+1's encode starts before batch n's last decode lands."""
    net = _conv_heavy_net()
    costs = StageCostModel(gpu_mac_throughput=7e8)
    engine = PrivateInferenceEngine(
        net,
        DarKnightConfig(virtual_batch_size=4, seed=2, pipeline_depth=4),
        stage_costs=costs,
    )
    x1 = nprng.normal(size=(4, 4, 12, 12))
    x2 = nprng.normal(size=(4, 4, 12, 12))
    groups, stats = engine.run_batch_window([(x1, 0.0), (x2, 0.0)])
    first, second = groups
    assert second.start < first.finish  # cross-batch overlap
    assert second.finish > first.finish
    assert stats.n_jobs == 2
    # The window's logits match per-batch synchronous runs bit-exactly.
    reference_engine = PrivateInferenceEngine(
        net, DarKnightConfig(virtual_batch_size=4, seed=2)
    )
    assert np.array_equal(first.output, reference_engine.run_batch(x1))
    assert np.array_equal(second.output, reference_engine.run_batch(x2))


def test_executor_rejects_bad_depth_and_plain_backend(nprng):
    net = _mixed_net()
    with pytest.raises(ConfigurationError, match="pipeline depth"):
        PipelineExecutor(net, _backend(), pipeline_depth=0)
    from repro.nn import PlainBackend

    with pytest.raises(ConfigurationError, match="staged op"):
        PipelineExecutor(net, PlainBackend(), pipeline_depth=2)
    with pytest.raises(ConfigurationError, match="pipeline depth"):
        DarKnightConfig(pipeline_depth=0)


# ----------------------------------------------------------------------
# staged ops on partial (padded) virtual batches, forward and backward
# ----------------------------------------------------------------------
def test_staged_dense_forward_backward_bit_identical_on_padded_batch(nprng):
    x = nprng.normal(size=(6, 8))  # K=4 -> one full vb + a padded pair
    w = nprng.normal(size=(8, 3))
    delta = nprng.normal(size=(6, 3)) * 0.1

    sync = _backend(seed=21)
    out_sync = sync.dense_forward(x, w, None, key="d")
    grad_sync = sync.dense_grad_w(x, delta, key="d")
    sync.end_batch()

    staged = _backend(seed=21)
    op = staged.stage_linear("dense", w, None, "d")
    vbs = list(iter_virtual_batches(x, 4))
    # Encode everything up front, then dispatch and decode out of order —
    # the freedoms a pipeline scheduler actually exercises.
    tickets = [staged.encode(op, vb, i) for i, vb in enumerate(vbs)]
    futures = [staged.dispatch(t) for t in reversed(tickets)]
    decoded = {f.ticket.vb_index: staged.decode(f) for f in futures}
    out_staged = np.concatenate([decoded[i] for i in range(len(vbs))], axis=0)
    assert np.array_equal(out_staged, out_sync)

    grad_staged = staged.dense_grad_w(x, delta, key="d")
    staged.end_batch()
    assert np.array_equal(grad_staged, grad_sync)
    staged.assert_encodings_released()


def test_staged_conv_forward_backward_bit_identical_on_padded_batch(nprng):
    x = nprng.normal(size=(5, 2, 6, 6))
    w = nprng.normal(size=(3, 2, 3, 3)) * 0.5
    delta = nprng.normal(size=(5, 3, 6, 6)) * 0.1

    sync = _backend(seed=31)
    out_sync = sync.conv2d_forward(x, w, None, 1, 1, key="c")
    grad_sync = sync.conv2d_grad_w(x, delta, 3, 3, 1, 1, key="c")
    sync.end_batch()

    staged = _backend(seed=31)
    op = staged.stage_linear("conv2d", w, None, "c", stride=1, pad=1)
    vbs = list(iter_virtual_batches(x, 4))
    tickets = [staged.encode(op, vb, i) for i, vb in enumerate(vbs)]
    futures = [staged.dispatch(t) for t in tickets]
    decoded = [staged.decode(f) for f in reversed(futures)]
    out_staged = np.concatenate(list(reversed(decoded)), axis=0)
    assert np.array_equal(out_staged, out_sync)

    grad_staged = staged.conv2d_grad_w(x, delta, 3, 3, 1, 1, key="c")
    staged.end_batch()
    assert np.array_equal(grad_staged, grad_sync)


def test_padded_rows_never_leak_into_outputs(nprng):
    """Decoded outputs contain exactly the real rows, whatever the order."""
    backend = _backend(seed=41)
    x = nprng.normal(size=(3, 8))  # single partial vb (3 of 4 slots real)
    w = nprng.normal(size=(8, 5))
    op = backend.stage_linear("dense", w, None, "p")
    (vb,) = iter_virtual_batches(x, 4)
    assert vb.is_padded
    y = backend.decode(backend.dispatch(backend.encode(op, vb, 0)))
    backend.end_batch()
    assert y.shape == (3, 5)
    assert np.max(np.abs(y - x @ w)) < 0.05


def test_reforward_with_fewer_virtual_batches_resets_records(nprng):
    """Re-staging a layer drops the previous forward's records wholesale,
    so a smaller re-forward before end_batch keeps backward well-defined."""
    backend = _backend(seed=71)
    w = nprng.normal(size=(8, 3))
    x8 = nprng.normal(size=(8, 8))
    x4 = nprng.normal(size=(4, 8))
    backend.dense_forward(x8, w, None, key="d")  # 2 virtual batches
    backend.dense_forward(x4, w, None, key="d")  # re-forward with just 1
    assert backend.open_encodings() == 1
    delta = nprng.normal(size=(4, 3)) * 0.1
    grad = backend.dense_grad_w(x4, delta, key="d")
    backend.end_batch()
    backend.assert_encodings_released()  # the stale vb1 share was dropped too
    assert np.max(np.abs(grad - x4.T @ delta)) < 0.05


def test_residual_block_flattens_into_dag_plan(nprng):
    """ResidualBlock flattens into body/shortcut/join DAG steps: the inner
    conv becomes a first-class offloaded stage (it pipelines below block
    granularity) and outputs stay bit-identical to the synchronous path."""
    from repro.nn import BranchJoin, ResidualBlock

    rng = np.random.default_rng(9)
    net = Sequential(
        [
            Conv2D(2, 4, 3, 1, 1, rng=rng),
            ReLU(),
            ResidualBlock([Conv2D(4, 4, 3, 1, 1, rng=rng)]),
            Flatten(),
            Dense(4 * 8 * 8, 3, rng=rng),
        ],
        (2, 8, 8),
    )
    plan = net.execution_plan()
    # conv, relu, inner conv (offloaded!), join, flatten, dense
    assert [s.offloaded for s in plan] == [True, False, True, False, False, True]
    join = plan[3]
    assert isinstance(join.layer, BranchJoin)
    # The skip connection is an explicit DAG edge: the join consumes the
    # body output and the block entry (the ReLU at step 1).
    assert join.deps == (2, 1)
    x = nprng.normal(size=(8, 2, 8, 8))
    sync = _backend(seed=81)
    reference = net.forward(x, sync, training=False)
    sync.end_batch()

    backend = _backend(seed=81)
    result = PipelineExecutor(net, backend, pipeline_depth=2).run(x)
    backend.end_batch()
    backend.assert_encodings_released()
    assert np.array_equal(result.output, reference)
    # Every inner kernel is span-accounted now — no hidden blocking offload.
    assert result.stats.stage_totals["gpu"] > 0


# ----------------------------------------------------------------------
# end_batch idempotency + release on abort
# ----------------------------------------------------------------------
def test_end_batch_is_idempotent(nprng):
    backend = _backend(seed=51)
    x = nprng.normal(size=(4, 8))
    backend.dense_forward(x, nprng.normal(size=(8, 3)), None, key="d")
    assert backend.open_encodings() == 1
    step_before = backend._step
    backend.end_batch()
    assert backend._step == step_before + 1
    backend.end_batch()  # no-op: nothing stored, step must not advance
    backend.end_batch()
    assert backend._step == step_before + 1
    backend.assert_encodings_released()


def test_pipeline_abort_mid_network_releases_all_encodings(nprng):
    """A byzantine GPU killing layer 2 must not leak layer 1's shares."""
    field = PrimeField()
    cfg = DarKnightConfig(virtual_batch_size=2, integrity=True, seed=6)
    # Honest on conv, tampering on the dense kernel: the pipeline aborts
    # after the first layer's encodings are already resident on devices.
    cluster = GpuCluster(
        field,
        cfg.n_gpus_required,
        fault_injectors={
            0: TargetedTamper(
                RandomTamper(field, probability=1.0, seed=7),
                target_op="dense_forward",
            )
        },
    )
    rng = np.random.default_rng(8)
    net = Sequential(
        [
            Conv2D(1, 2, 3, 1, 1, rng=rng),
            ReLU(),
            Flatten(),
            Dense(2 * 6 * 6, 3, rng=rng),
        ],
        (1, 6, 6),
    )
    for depth in (1, 3):
        backend = DarKnightBackend(cfg, cluster=cluster)
        engine = PrivateInferenceEngine(net, backend=backend, pipeline_depth=depth)
        with pytest.raises(IntegrityError):
            engine.run_batch(nprng.normal(size=(4, 1, 6, 6)))
        # run_batch's finally already ran end_batch + the release assert;
        # re-check from the outside and confirm idempotency after abort.
        assert backend.open_encodings() == 0
        assert all(not dev.stored_shares for dev in cluster.devices)
        backend.end_batch()
        backend.assert_encodings_released()


def test_assert_encodings_released_detects_leaks(nprng):
    backend = _backend(seed=61)
    op = backend.stage_linear("dense", nprng.normal(size=(8, 3)), None, "d")
    (vb,) = iter_virtual_batches(nprng.normal(size=(4, 8)), 4)
    backend.encode(op, vb, 0)  # never dispatched or decoded
    assert backend.open_encodings() == 1
    with pytest.raises(Exception, match="not released"):
        backend.assert_encodings_released()
    backend.end_batch()  # must release the undispatched ticket's shares
    backend.assert_encodings_released()


def test_enclave_timeline_is_serialized():
    tl = EnclaveTimeline()
    s1, e1 = tl.reserve(0.0, 1.0)
    s2, e2 = tl.reserve(0.5, 1.0)  # wants 0.5, must wait for the lane
    assert (s1, e1) == (0.0, 1.0)
    assert (s2, e2) == (1.0, 2.0)
    assert tl.busy_time == 2.0


# ----------------------------------------------------------------------
# pluggable stage rankers
# ----------------------------------------------------------------------
def test_deadline_ranker_bit_identical_and_reorders_the_schedule(nprng):
    """The deadline-aware ranker runs the tightest-budget group's stages
    first, yet decodes the exact same values as the default ranker."""
    from repro.pipeline import DeadlineAwareRanker, build_ranker

    net = _conv_heavy_net()
    costs = StageCostModel(gpu_mac_throughput=7e8)
    x1 = nprng.normal(size=(4, 4, 12, 12))
    x2 = nprng.normal(size=(4, 4, 12, 12))

    def run(ranker):
        backend = _backend(seed=7)
        executor = PipelineExecutor(
            net, backend, pipeline_depth=4, costs=costs, ranker=ranker
        )
        # Group 0 released first but budget-less; group 1 carries a
        # tight deadline.
        groups, stats = executor.run_grouped(
            [(x1, 0.0), (x2, 0.0, 0.001)]
        )
        backend.end_batch()
        return groups, stats

    default_groups, _ = run(None)
    deadline_groups, _ = run(build_ranker("deadline"))
    # Bit-identical decoded outputs, whatever the schedule did.
    for a, b in zip(default_groups, deadline_groups):
        assert np.array_equal(a.output, b.output)
    # The deadline-carrying group finishes no later than under the
    # default order (here strictly earlier: it runs first).
    assert deadline_groups[1].finish <= default_groups[1].finish
    assert deadline_groups[1].finish < deadline_groups[0].finish
    assert isinstance(build_ranker("deadline"), DeadlineAwareRanker)


def test_default_ranker_without_deadlines_matches_legacy_schedule(nprng):
    """2-tuple items and 3-tuple items with inf deadlines schedule the
    same spans under both shipped rankers."""
    import math

    from repro.pipeline import build_ranker

    net = _mixed_net()
    x = nprng.normal(size=(8, 2, 8, 8))

    def spans(ranker, with_inf):
        backend = _backend(seed=5)
        executor = PipelineExecutor(
            net, backend, pipeline_depth=2, ranker=ranker
        )
        items = [(x, 0.0, math.inf)] if with_inf else [(x, 0.0)]
        _, stats = executor.run_grouped(items)
        backend.end_batch()
        return [(s.job, s.layer, s.stage, s.start, s.end) for s in stats.spans]

    legacy = spans(None, with_inf=False)
    assert spans(build_ranker("earliest"), with_inf=True) == legacy
    assert spans(build_ranker("deadline"), with_inf=True) == legacy


def test_unknown_ranker_names_are_rejected():
    from repro.pipeline import build_ranker

    with pytest.raises(ConfigurationError):
        build_ranker("fifo")
    with pytest.raises(ConfigurationError):
        DarKnightConfig(stage_ranker="fifo")


def test_deadline_ranker_keeps_feasibility_primary():
    """A blocked tight-deadline job must not outrank runnable work — the
    serialized enclave never idles waiting for a premium GPU future."""
    import math
    from types import SimpleNamespace

    from repro.pipeline import DeadlineAwareRanker

    tl = EnclaveTimeline()  # free_at = 0
    blocked_premium = SimpleNamespace(
        future=SimpleNamespace(ready_at=5.0), ready_at=0.0, index=0, deadline=0.001
    )
    runnable_bulk = SimpleNamespace(
        future=None, ready_at=0.0, index=1, deadline=math.inf
    )
    runnable_premium = SimpleNamespace(
        future=None, ready_at=0.0, index=2, deadline=0.001
    )
    ranker = DeadlineAwareRanker()
    # Runnable work beats the blocked premium job...
    assert ranker.rank(runnable_bulk, tl) < ranker.rank(blocked_premium, tl)
    # ...and among equally-runnable tasks the tightest deadline wins.
    assert ranker.rank(runnable_premium, tl) < ranker.rank(runnable_bulk, tl)
