"""Tests for the trainer over both backends and private inference."""

import numpy as np
import pytest

from repro.data import cifar_like
from repro.errors import ConfigurationError
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, PlainBackend, ReLU, Sequential
from repro.runtime import (
    DarKnightConfig,
    PrivateInferenceEngine,
    Trainer,
    make_darknight_trainer,
)


def _net(rng, n_classes=4):
    return Sequential(
        [
            Conv2D(3, 4, 3, 1, 1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(4 * 4 * 4, n_classes, rng=rng),
        ],
        input_shape=(3, 8, 8),
    )


def test_plain_training_learns(nprng):
    data = cifar_like(n_train=48, n_test=24, seed=0, size=8)
    net = _net(nprng, n_classes=10)
    trainer = Trainer(net, lr=0.08, momentum=0.9)
    history = trainer.fit(
        data.x_train, data.y_train, epochs=6, batch_size=16,
        val_x=data.x_test, val_y=data.y_test,
    )
    assert len(history.loss) == 6
    assert len(history.val_accuracy) == 6
    assert history.loss[-1] < history.loss[0]
    assert history.accuracy[-1] > 0.4  # well above the 10% chance floor


def test_darknight_training_learns(nprng):
    data = cifar_like(n_train=24, n_test=12, seed=1, size=8)
    net = _net(nprng, n_classes=10)
    trainer, backend = make_darknight_trainer(
        net, DarKnightConfig(virtual_batch_size=2, seed=2), lr=0.08
    )
    history = trainer.fit(data.x_train, data.y_train, epochs=3, batch_size=8)
    assert history.loss[-1] < history.loss[0]
    assert backend.cluster.total_mac_ops() > 0


def test_histories_comparable_between_backends(nprng):
    """Raw and DarKnight training from identical init track each other
    (the Fig. 4 claim) on a small task."""
    data = cifar_like(n_train=32, n_test=16, seed=3, size=8)
    curves = {}
    for mode in ("raw", "darknight"):
        rng = np.random.default_rng(7)
        net = _net(rng, n_classes=10)
        if mode == "raw":
            trainer = Trainer(net, lr=0.08, momentum=0.9)
        else:
            trainer, _ = make_darknight_trainer(
                net, DarKnightConfig(virtual_batch_size=2, seed=7), lr=0.08
            )
        history = trainer.fit(
            data.x_train, data.y_train, epochs=3, batch_size=8, shuffle_seed=7
        )
        curves[mode] = history.accuracy
    # Final training accuracy differs by a small margin only.
    assert abs(curves["raw"][-1] - curves["darknight"][-1]) < 0.3


def test_trainer_validation(nprng):
    net = _net(nprng)
    trainer = Trainer(net)
    with pytest.raises(ConfigurationError):
        trainer.fit(np.zeros((4, 3, 8, 8)), np.zeros(3), epochs=1, batch_size=2)
    with pytest.raises(ConfigurationError):
        trainer.fit(np.zeros((4, 3, 8, 8)), np.zeros(4), epochs=1, batch_size=0)


def test_private_inference_engine(nprng):
    data = cifar_like(n_train=32, n_test=16, seed=4, size=8)
    net = _net(nprng, n_classes=10)
    Trainer(net, lr=0.08).fit(data.x_train, data.y_train, epochs=4, batch_size=16)
    engine = PrivateInferenceEngine(
        net, DarKnightConfig(virtual_batch_size=2, integrity=True, seed=5)
    )
    preds = engine.predict(data.x_test[:6])
    assert preds.shape == (6,)
    # Private predictions match the plain model's predictions.
    plain = np.argmax(net.predict(data.x_test[:6], PlainBackend()), axis=1)
    assert np.mean(preds == plain) >= 0.8
    acc = engine.accuracy(data.x_test[:6], data.y_test[:6])
    assert 0.0 <= acc <= 1.0
