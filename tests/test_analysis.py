"""Tests for the empirical privacy analysis (Section 5's claims, measured)."""

import numpy as np
import pytest

from repro.analysis import (
    chi_square_uniformity,
    empirical_mutual_information,
    max_abs_correlation,
    mi_gap_vs_independent,
    run_collusion_attack,
    share_input_dependence,
)
from repro.errors import ConfigurationError


def test_mi_positive_for_dependent_streams(nprng):
    a = nprng.normal(size=4000)
    b = a + 0.1 * nprng.normal(size=4000)
    mi = empirical_mutual_information(a, b)
    floor = empirical_mutual_information(a, nprng.permutation(b))
    assert mi > floor + 0.5


def test_mi_validation(nprng):
    with pytest.raises(ConfigurationError):
        empirical_mutual_information(np.zeros(10), np.zeros(11))
    with pytest.raises(ConfigurationError):
        empirical_mutual_information(np.zeros(10), np.zeros(10), bins=16)


def test_mi_gap_helper(nprng):
    a = nprng.normal(size=2000)
    mi, floor = mi_gap_vs_independent(a, a.copy())
    assert mi > floor


def test_chi_square_uniform_near_dof(field, nprng):
    values = nprng.integers(0, field.p, size=20000)
    stat, dof = chi_square_uniformity(values, field.p, bins=64)
    assert dof == 63
    assert stat < 120  # comfortably near dof for uniform data


def test_chi_square_flags_nonuniform(field, nprng):
    values = nprng.integers(0, field.p // 8, size=20000)  # concentrated
    stat, _ = chi_square_uniformity(values, field.p, bins=64)
    assert stat > 1000


def test_chi_square_needs_samples(field):
    with pytest.raises(ConfigurationError):
        chi_square_uniformity(np.zeros(10), field.p, bins=64)


def test_max_abs_correlation_bounds(nprng):
    a = nprng.normal(size=(64, 8))
    assert max_abs_correlation(a, a) == pytest.approx(1.0, abs=1e-9)
    b = nprng.normal(size=(64, 8))
    assert max_abs_correlation(a, b) < 0.6
    with pytest.raises(ConfigurationError):
        max_abs_correlation(a, b[:32])
    with pytest.raises(ConfigurationError):
        max_abs_correlation(a[:4], b[:4])


# ----------------------------------------------------------------------
# the privacy boundary, measured
# ----------------------------------------------------------------------
def test_attack_fails_at_tolerance(field, frng):
    inputs = frng.uniform((2, 16))
    result = run_collusion_attack(field, inputs, coalition=(0,), k=2, m=1, seed=0)
    assert not result.success


def test_attack_succeeds_beyond_tolerance(field, frng):
    inputs = frng.uniform((2, 16))
    result = run_collusion_attack(field, inputs, coalition=(0, 1, 2), k=2, m=1, seed=0)
    assert result.success
    assert np.array_equal(result.recovered, inputs)


def test_masked_shares_carry_no_dependence(field):
    report = share_input_dependence(field, k=2, m=1, n_trials=128, n_features=16, seed=0)
    assert report.mi_excess < 0.05
    assert report.max_correlation < 0.35


def test_unmasked_combination_leaks(field):
    """Positive control: a noiseless linear combination is detectably
    input-dependent — the estimator would catch a broken encoder."""
    masked = share_input_dependence(field, mask=True, n_trials=128, seed=1)
    leaky = share_input_dependence(field, mask=False, n_trials=128, seed=1)
    assert leaky.mi_excess > masked.mi_excess + 0.1
