"""Tests for the EPC occupancy/paging model."""

import pytest

from repro.enclave import EPC_TOTAL_BYTES, EPC_USABLE_BYTES, EpcModel
from repro.errors import EnclaveError

MB = 1024 * 1024


def test_constants_match_sgx_generation():
    assert EPC_TOTAL_BYTES == 128 * MB
    assert EPC_USABLE_BYTES == 93 * MB


def test_allocation_tracking():
    epc = EpcModel(usable_bytes=10 * MB)
    epc.allocate("a", 4 * MB)
    epc.allocate("b", 3 * MB)
    assert epc.resident_bytes == 7 * MB
    assert epc.peak_bytes == 7 * MB
    assert not epc.is_overflowing
    epc.free("a")
    assert epc.resident_bytes == 3 * MB
    assert epc.peak_bytes == 7 * MB  # peak persists


def test_overflow_counts_paged_bytes():
    epc = EpcModel(usable_bytes=10 * MB)
    epc.allocate("big", 14 * MB)
    assert epc.is_overflowing
    assert epc.overflow_bytes == 4 * MB
    assert epc.stats.paged_out_bytes == 4 * MB
    assert epc.stats.page_faults == 1


def test_touch_charges_proportional_paging():
    epc = EpcModel(usable_bytes=10 * MB)
    epc.allocate("a", 8 * MB)
    epc.touch("a")  # fits: no paging
    assert epc.stats.total_paged_bytes == 0
    epc.allocate("b", 8 * MB)  # now 16 MB resident, 6 over
    before = epc.stats.total_paged_bytes
    epc.touch("a")
    assert epc.stats.total_paged_bytes > before


def test_validation_errors():
    epc = EpcModel(usable_bytes=MB)
    with pytest.raises(EnclaveError):
        EpcModel(usable_bytes=0)
    with pytest.raises(EnclaveError):
        epc.allocate("x", -1)
    epc.allocate("x", 10)
    with pytest.raises(EnclaveError):
        epc.allocate("x", 10)  # duplicate tag
    with pytest.raises(EnclaveError):
        epc.free("nope")
    with pytest.raises(EnclaveError):
        epc.touch("nope")


def test_reset_stats():
    epc = EpcModel(usable_bytes=MB)
    epc.allocate("big", 2 * MB)
    assert epc.stats.total_paged_bytes > 0
    epc.reset_stats()
    assert epc.stats.total_paged_bytes == 0
    assert epc.resident_bytes == 2 * MB  # allocations survive


def test_working_set_paging_bytes():
    epc = EpcModel(usable_bytes=10 * MB)
    assert epc.working_set_paging_bytes(5 * MB) == 0
    assert epc.working_set_paging_bytes(12 * MB) == 2 * 2 * MB
    assert epc.working_set_paging_bytes(12 * MB, passes=3) == 2 * 2 * MB * 3
