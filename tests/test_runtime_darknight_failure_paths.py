"""Failure-injection tests for the DarKnight backend's guard rails."""

import numpy as np
import pytest

from repro.errors import DecodingError, QuantizationError
from repro.fieldmath import PrimeField
from repro.gpu import GpuCluster, RandomTamper
from repro.runtime import DarKnightBackend, DarKnightConfig


def test_validate_decode_catches_silent_corruption(nprng):
    """Without the integrity share, validate_decode is the debug net that
    still catches a tampering GPU (by disagreeing with the float reference)."""
    field = PrimeField()
    cfg = DarKnightConfig(
        virtual_batch_size=2, integrity=False, validate_decode=True, seed=0
    )
    cluster = GpuCluster(
        field,
        cfg.n_gpus_required,
        fault_injectors={
            0: RandomTamper(field, probability=1.0, n_entries=8, seed=1)
        },
    )
    backend = DarKnightBackend(cfg, cluster=cluster)
    x = nprng.normal(size=(2, 16))
    w = nprng.normal(size=(16, 4))
    with pytest.raises(DecodingError, match="deviates from float reference"):
        backend.dense_forward(x, w, None, key="d")


def test_quantization_overflow_raises_without_normalization(nprng):
    """With dynamic normalisation off, out-of-range values fail loudly
    instead of silently wrapping mod p (the paper's VGG failure mode)."""
    cfg = DarKnightConfig(
        virtual_batch_size=2, dynamic_normalization=False, seed=0
    )
    backend = DarKnightBackend(cfg)
    x = nprng.normal(size=(2, 8)) * 1e6  # far beyond the signed field range
    w = nprng.normal(size=(8, 3))
    with pytest.raises(QuantizationError):
        backend.dense_forward(x, w, None, key="d")


def test_dynamic_normalization_rescues_the_same_input(nprng):
    """The paper's VGG fix, demonstrated: identical out-of-range input works
    once max-abs normalisation is enabled."""
    cfg = DarKnightConfig(virtual_batch_size=2, dynamic_normalization=True, seed=0)
    backend = DarKnightBackend(cfg)
    x = nprng.normal(size=(2, 8)) * 1e6
    w = nprng.normal(size=(8, 3))
    out = backend.dense_forward(x, w, None, key="d")
    reference = x @ w
    rel_err = np.max(np.abs(out - reference)) / np.max(np.abs(reference))
    assert rel_err < 0.05


def test_mismatched_prime_rejected():
    from repro.enclave import Enclave

    cfg = DarKnightConfig(virtual_batch_size=2, prime=2**25 - 39)
    wrong_field_enclave = Enclave(field=PrimeField(p=10007), seed=0)
    with pytest.raises(DecodingError, match="prime"):
        DarKnightBackend(cfg, enclave=wrong_field_enclave)


def test_backward_integrity_catches_eq_only_tamper(nprng):
    """A device that lies only on the backward Eq op (honest forward) is
    caught by the alternate-B redundant decode."""
    from repro.errors import IntegrityError
    from repro.gpu import TargetedTamper

    field = PrimeField()
    cfg = DarKnightConfig(virtual_batch_size=2, integrity=True, seed=0)
    cluster = GpuCluster(
        field,
        cfg.n_gpus_required,
        fault_injectors={
            1: TargetedTamper(
                RandomTamper(field, probability=1.0, seed=2),
                target_op="backward_equation_dense",
            )
        },
    )
    backend = DarKnightBackend(cfg, cluster=cluster)
    x = nprng.normal(size=(2, 8))
    w = nprng.normal(size=(8, 3))
    backend.dense_forward(x, w, None, key="d")  # forward is honest -> passes
    with pytest.raises(IntegrityError):
        backend.dense_grad_w(x, nprng.normal(size=(2, 3)) * 0.1, key="d")
