"""End-to-end tests for multi-enclave sharded serving.

Covers the three load-bearing properties of the sharding subsystem:

* correctness — every shard count serves bit-identical logits on the
  same trace (per-sample normalization makes responses independent of
  batch composition, hence of routing);
* scaling — parallel enclave timelines beat one serialized timeline on
  enclave-bound traffic;
* resilience — a shard killed mid-window fails its sessions over through
  the attestation mesh onto survivors with per-batch retry, dropping and
  corrupting nothing.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import Dense, PlainBackend, ReLU, Sequential
from repro.runtime import DarKnightConfig
from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace


def _tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def _serve(trace, num_shards, **kwargs):
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=num_shards)
    config = ServingConfig(darknight=dk, queue_capacity=512, **kwargs)
    server = PrivateInferenceServer(_tiny_net(), config)
    return server, server.serve_trace(trace)


def test_shard_counts_serve_bit_identical_logits():
    """num_shards in {1, 2, 4} must agree to the last bit per request."""
    trace = synthetic_trace(48, (16,), n_tenants=8, mean_interarrival=1e-4, seed=3)
    logits_by_count = {}
    for num_shards in (1, 2, 4):
        _, report = _serve(trace, num_shards)
        assert len(report.completed) == 48
        assert report.shards == num_shards
        logits_by_count[num_shards] = {
            o.request_id: o.logits for o in report.completed
        }
    for num_shards in (2, 4):
        for rid, logits in logits_by_count[1].items():
            assert np.array_equal(logits, logits_by_count[num_shards][rid]), (
                f"request {rid} differs between 1 and {num_shards} shards"
            )


def test_sharded_serving_matches_float_reference():
    trace = synthetic_trace(32, (16,), n_tenants=6, mean_interarrival=1e-4, seed=4)
    _, report = _serve(trace, 2)
    events = sorted(trace, key=lambda r: r.time)
    reference = _tiny_net().forward(
        np.stack([e.x for e in events]), PlainBackend(), training=False
    )
    by_id = {o.request_id: o for o in report.completed}
    for i in range(len(events)):
        assert np.max(np.abs(by_id[i].logits - reference[i])) < 0.1
        assert by_id[i].prediction == int(np.argmax(reference[i]))


def test_parallel_timelines_scale_enclave_bound_throughput():
    """2 shards ~2x one shard's simulated throughput when enclave-bound."""
    trace = synthetic_trace(160, (16,), n_tenants=16, mean_interarrival=2e-5, seed=5)
    _, single = _serve(trace, 1, max_batch_wait=2e-3)
    _, dual = _serve(trace, 2, max_batch_wait=2e-3)
    assert len(single.completed) == len(dual.completed) == 160
    assert dual.metrics.throughput / single.metrics.throughput >= 1.6


def test_tenants_stay_pinned_and_sessions_are_shard_scoped():
    trace = synthetic_trace(40, (16,), n_tenants=6, mean_interarrival=1e-4, seed=6)
    server, report = _serve(trace, 3)
    # One handshake per tenant even though requests spread over time.
    assert report.handshakes == 6
    by_shard = server.sessions.sessions_by_shard()
    placed = [t for tenants in by_shard.values() for t in tenants]
    assert sorted(placed) == sorted(report.tenants)
    # Session shard matches the router's pin for every tenant.
    for shard_id, tenants in by_shard.items():
        for tenant in tenants:
            assert server.router.shard_for(tenant) == shard_id


def test_shard_killed_mid_window_fails_over_without_losing_responses():
    """The ISSUE's failover drill: kill a shard mid-window, expect every
    session to re-attest through the mesh onto a survivor and every
    request to complete with correct logits (per-batch retry)."""
    n = 64
    trace = synthetic_trace(n, (16,), n_tenants=8, mean_interarrival=2e-5, seed=5)
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=3)
    server = PrivateInferenceServer(
        _tiny_net(), ServingConfig(darknight=dk, queue_capacity=256)
    )
    victim = server.shards[1]
    victim.fail_after(2)  # 2 batches in, the next window dies partway

    report = server.serve_trace(trace)

    # No dropped responses: every request completed despite the failure.
    assert len(report.completed) == n
    assert all(o.ok for o in report.outcomes)
    assert report.failovers == 1
    assert report.migrations >= 1
    assert not victim.healthy
    assert server.router.is_failed(1)

    # No corrupted responses: logits still track the float reference.
    events = sorted(trace, key=lambda r: r.time)
    reference = _tiny_net().forward(
        np.stack([e.x for e in events]), PlainBackend(), training=False
    )
    by_id = {o.request_id: o for o in report.completed}
    for i in range(n):
        assert np.max(np.abs(by_id[i].logits - reference[i])) < 0.1

    # Sessions re-attested onto survivors: the dead shard holds none, and
    # the displaced tenants' migrations show up as extra handshakes.
    by_shard = server.sessions.sessions_by_shard()
    assert by_shard[1] == []
    assert report.handshakes == 8 + report.migrations
    # Per-batch retry: every scheduled batch produced outcomes exactly once.
    batch_ids = [o.batch_id for o in report.outcomes if o.batch_id is not None]
    assert len(set(batch_ids)) == report.metrics.batches


def test_failover_logits_match_unfailed_run_bit_for_bit():
    """Migration must not perturb values: the run with a mid-trace shard
    death serves the exact logits of the same trace with no failure."""
    trace = synthetic_trace(48, (16,), n_tenants=8, mean_interarrival=2e-5, seed=7)
    _, healthy_report = _serve(trace, 3)
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=3)
    server = PrivateInferenceServer(
        _tiny_net(), ServingConfig(darknight=dk, queue_capacity=512)
    )
    server.shards[2].fail_after(1)
    failed_report = server.serve_trace(trace)
    assert len(failed_report.completed) == 48
    healthy = {o.request_id: o.logits for o in healthy_report.completed}
    failed = {o.request_id: o.logits for o in failed_report.completed}
    for rid, logits in healthy.items():
        assert np.array_equal(logits, failed[rid])


def test_total_outage_fails_requests_without_crashing_the_server():
    """When the only shard dies there is nowhere to fail over to: affected
    requests must end as ``shard_failed`` outcomes, not a raised error."""
    from repro.serving import STATUS_SHARD_FAILED

    n = 16
    trace = synthetic_trace(n, (16,), n_tenants=2, mean_interarrival=2e-5, seed=8)
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=1)
    server = PrivateInferenceServer(
        _tiny_net(), ServingConfig(darknight=dk, queue_capacity=64)
    )
    server.shards[0].fail_after(1)
    report = server.serve_trace(trace)
    # The replay ran to completion and every request got a terminal outcome.
    assert len(report.outcomes) == n
    failed = [o for o in report.outcomes if o.status == STATUS_SHARD_FAILED]
    assert len(report.completed) == 4  # the one batch served before death
    assert len(failed) == n - 4
    assert all(o.error for o in failed)
    assert report.metrics.shard_failures == n - 4
    assert report.failovers == 1
    assert "shard_failed" not in report.render()  # render stays tabular
    assert "1 failovers" in report.render()


def test_failed_batch_splits_across_tenants_new_shards():
    """A mixed-tenant batch whose shard dies retries each request on the
    shard its *migrated* session now lives on — one sub-batch per target."""
    from repro.serving import InferenceWorkerPool, PendingRequest, ScheduledBatch
    from repro.serving.session import ShardedSessionManager
    from repro.sharding import AttestationMesh, EnclaveShard, ShardRouter

    dk = DarKnightConfig(virtual_batch_size=4, seed=0)
    shards = [EnclaveShard.provision(i, _tiny_net(), dk) for i in range(3)]
    mesh = AttestationMesh(shards).establish()
    router = ShardRouter(3, rebalance_margin=1)
    sessions = ShardedSessionManager(shards, router=router, mesh=mesh, seed=0)
    tenants = ["alice", "bob", "carol"]
    # White-box: pin all three tenants (and their sessions) to shard 0.
    router._pins = {t: 0 for t in tenants}
    router._load = [3, 0, 0]
    for t in tenants:
        sessions.connect(t)
    pool = InferenceWorkerPool(shards=shards, router=router, sessions=sessions)

    shards[0].kill()
    rng = np.random.default_rng(1)
    batch = ScheduledBatch(
        batch_id=7,
        requests=[
            PendingRequest(
                request_id=i, tenant=t, x=rng.normal(size=16),
                arrival_time=0.0, enqueue_time=0.0,
            )
            for i, t in enumerate(tenants)
        ],
        flush_time=0.0,
        trigger="size",
        slots=4,
        shard_id=0,
    )
    outcomes = pool.dispatch_window([batch])

    assert sorted(o.request_id for o in outcomes) == [0, 1, 2]
    assert all(o.ok and o.batch_id == 7 for o in outcomes)
    # Margin-1 rebalancing spreads 3 displaced tenants over 2 survivors,
    # so the retry necessarily split into one sub-batch per target shard.
    pins = router.pins()
    targets = {pins[t] for t in tenants}
    assert targets == {1, 2}
    for target in targets:
        expected = sum(1 for t in tenants if pins[t] == target)
        assert shards[target].batches_run == 1  # one sub-batch each
        assert sorted(sessions.sessions_by_shard()[target]) == sorted(
            t for t in tenants if pins[t] == target
        )
        assert expected >= 1
    assert sessions.migrations == 3
    assert pool.failovers == 1

    # A leftover batch still addressed to the dead shard (flushed from its
    # queue after the failure) reroutes without counting a second failover.
    leftover = ScheduledBatch(
        batch_id=8,
        requests=[
            PendingRequest(
                request_id=3, tenant="alice", x=rng.normal(size=16),
                arrival_time=0.0, enqueue_time=0.0,
            )
        ],
        flush_time=0.0,
        trigger="deadline",
        slots=4,
        shard_id=0,
    )
    late = pool.dispatch_window([leftover])
    assert len(late) == 1 and late[0].ok
    assert pool.failovers == 1
    assert sessions.migrations == 3


def test_refused_migration_leaves_no_tenant_with_two_sessions():
    """If the mesh refuses a migration target, the dead shard's sessions
    are dropped outright: the failing window's batches fail, no tenant is
    ever listed on two shards, and migrations stays zero."""
    trace = synthetic_trace(24, (16,), n_tenants=4, mean_interarrival=2e-5, seed=12)
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=2)
    server = PrivateInferenceServer(
        _tiny_net(), ServingConfig(darknight=dk, queue_capacity=64)
    )
    # White-box: sabotage the (normally startup-verified) mesh so the
    # failover gate refuses every cross-shard migration.
    server.mesh._links.clear()
    server.shards[0].fail_after(1)
    report = server.serve_trace(trace)
    assert len(report.outcomes) == 24
    assert report.migrations == 0
    by_shard = server.sessions.sessions_by_shard()
    assert by_shard[0] == []  # dead shard holds no stale sessions
    # No tenant appears on more than one shard.
    placed = [t for tenants in by_shard.values() for t in tenants]
    assert len(placed) == len(set(placed))
    # Later arrivals re-attested fresh on the survivor and were served.
    assert len(report.completed) + report.metrics.shard_failures == 24
    assert report.metrics.shard_failures >= 1


def test_retries_release_after_the_failure_frontier():
    """A retried batch cannot start on the survivor before the dead
    shard's failure was observable — failover cost must reach the
    latency metrics instead of vanishing from the simulated clock."""
    from repro.serving import InferenceWorkerPool, PendingRequest, ScheduledBatch
    from repro.sharding import EnclaveShard

    dk = DarKnightConfig(virtual_batch_size=2, seed=0)
    shards = [EnclaveShard.provision(i, _tiny_net(), dk) for i in range(2)]
    pool = InferenceWorkerPool(shards=shards)
    shards[0].fail_after(1)
    rng = np.random.default_rng(2)
    batches = [
        ScheduledBatch(
            batch_id=b,
            requests=[
                PendingRequest(
                    request_id=2 * b + i, tenant=f"t{i}", x=rng.normal(size=16),
                    arrival_time=0.0, enqueue_time=0.0,
                )
                for i in range(2)
            ],
            flush_time=0.0,
            trigger="size",
            slots=2,
            shard_id=0,
        )
        for b in range(2)
    ]
    outcomes = pool.dispatch_window(batches)
    assert len(outcomes) == 4 and all(o.ok for o in outcomes)
    frontier = shards[0].timeline.free_at  # where the dead shard stopped
    assert frontier > 0.0
    retried = [o for o in outcomes if o.batch_id == 1]
    assert all(o.dispatch_time >= frontier for o in retried)


def test_retry_cap_counts_surviving_shards_only():
    """Regression: the cascade cap used ``len(self.shards)`` (dead ones
    included), letting a much-retried batch keep bouncing long after the
    fleet shrank.  The cap must track survivors — while still always
    allowing the last survivor one honest attempt."""
    from repro.serving import (
        STATUS_SHARD_FAILED,
        InferenceWorkerPool,
        PendingRequest,
        ScheduledBatch,
    )
    from repro.sharding import EnclaveShard

    def _batch(retries):
        rng = np.random.default_rng(3)
        return ScheduledBatch(
            batch_id=1,
            requests=[
                PendingRequest(
                    request_id=0, tenant="t0", x=rng.normal(size=16),
                    arrival_time=0.0, enqueue_time=0.0,
                )
            ],
            flush_time=0.0,
            trigger="size",
            slots=2,
            shard_id=0,
            retries=retries,
        )

    dk = DarKnightConfig(virtual_batch_size=2, seed=0)
    shards = [EnclaveShard.provision(i, _tiny_net(), dk) for i in range(3)]
    pool = InferenceWorkerPool(shards=shards)
    shards[0].kill()
    shards[1].kill()

    # retries already exceed the single survivor: capped, not bounced.
    (capped,) = pool.dispatch_window([_batch(retries=2)])
    assert capped.status == STATUS_SHARD_FAILED
    assert "exhausted" in capped.error

    # At the cap boundary the last survivor still gets its attempt.
    (served,) = pool.dispatch_window([_batch(retries=1)])
    assert served.ok
    assert shards[2].batches_run == 1


def test_failover_repins_do_not_inflate_the_rebalance_counter():
    """Regression: failure migrations used to route through ``shard_for``
    and count as load rebalances, making router telemetry conflate two
    very different events."""
    from repro.sharding import ShardRouter

    router = ShardRouter(3, rebalance_margin=1)
    for i in range(12):
        router.shard_for(f"tenant{i}")
    organic = router.rebalanced
    displaced = [t for t, s in router.pins().items() if s == 1]
    assert displaced
    remap = router.fail_shard(1)
    assert sorted(remap) == sorted(displaced)
    # Every displaced tenant is a failover re-pin; none is a rebalance.
    assert router.failover_repins == len(displaced)
    assert router.rebalanced == organic
    # Organic placements afterwards count as rebalances again.
    for i in range(12, 24):
        router.shard_for(f"tenant{i}")
    assert router.failover_repins == len(displaced)
    assert router.rebalanced >= organic


def test_injected_hardware_requires_single_shard():
    from repro.fieldmath import PrimeField
    from repro.gpu import GpuCluster

    dk = DarKnightConfig(virtual_batch_size=2, seed=0, num_shards=2)
    cluster = GpuCluster(PrimeField(), dk.n_gpus_required)
    with pytest.raises(ConfigurationError):
        PrivateInferenceServer(
            _tiny_net(), ServingConfig(darknight=dk), cluster=cluster
        )


def test_num_shards_below_one_is_rejected():
    with pytest.raises(ConfigurationError):
        DarKnightConfig(num_shards=0)


def test_budget_exhausted_retries_are_skipped_not_bounced():
    """A failover retry whose class budget already expired at the failure
    frontier must terminate (counted) instead of burning a survivor;
    budget-holding co-batched requests still retry and complete."""
    from repro.serving import (
        STATUS_SHARD_FAILED,
        InferenceWorkerPool,
        PendingRequest,
        ScheduledBatch,
        SloClass,
        SloPolicy,
    )
    from repro.sharding import EnclaveShard

    slo = SloPolicy(
        classes={"tight": SloClass(name="tight", latency_budget=1e-9)},
        assignments={"hurried": "tight"},
    )
    dk = DarKnightConfig(virtual_batch_size=2, seed=0)
    shards = [EnclaveShard.provision(i, _tiny_net(), dk) for i in range(2)]
    pool = InferenceWorkerPool(shards=shards, slo=slo)
    shards[0].fail_after(1)
    rng = np.random.default_rng(4)

    def _pending(rid, tenant):
        return PendingRequest(
            request_id=rid, tenant=tenant, x=rng.normal(size=16),
            arrival_time=0.0, enqueue_time=0.0,
        )

    batches = [
        ScheduledBatch(
            batch_id=0,
            requests=[_pending(0, "calm"), _pending(1, "calm")],
            flush_time=0.0, trigger="size", slots=2, shard_id=0,
        ),
        ScheduledBatch(
            batch_id=1,
            requests=[_pending(2, "hurried"), _pending(3, "calm")],
            flush_time=0.0, trigger="size", slots=2, shard_id=0,
        ),
    ]
    outcomes = pool.dispatch_window(batches)
    assert len(outcomes) == 4
    by_id = {o.request_id: o for o in outcomes}
    # The first batch completed before the shard died.
    assert by_id[0].ok and by_id[1].ok
    # The expired-budget request was skipped, with the reason recorded.
    assert by_id[2].status == STATUS_SHARD_FAILED
    assert "budget exhausted" in by_id[2].error
    assert pool.retries_skipped_budget == 1
    # Its co-batched budget-holder still failed over and completed —
    # after the failure frontier, on the survivor.
    assert by_id[3].ok
    assert by_id[3].dispatch_time >= shards[0].timeline.free_at
    assert shards[1].batches_run == 1


def test_infinite_budgets_never_skip_retries():
    """Without a policy (or with all-default classes) failover retries
    behave exactly as before: everything bounces, nothing is skipped."""
    from repro.serving import InferenceWorkerPool, PendingRequest, ScheduledBatch
    from repro.sharding import EnclaveShard

    dk = DarKnightConfig(virtual_batch_size=2, seed=0)
    shards = [EnclaveShard.provision(i, _tiny_net(), dk) for i in range(2)]
    pool = InferenceWorkerPool(shards=shards)
    shards[0].fail_after(1)
    rng = np.random.default_rng(5)
    batches = [
        ScheduledBatch(
            batch_id=b,
            requests=[
                PendingRequest(
                    request_id=2 * b + i, tenant=f"t{i}", x=rng.normal(size=16),
                    arrival_time=0.0, enqueue_time=0.0,
                )
                for i in range(2)
            ],
            flush_time=0.0, trigger="size", slots=2, shard_id=0,
        )
        for b in range(2)
    ]
    outcomes = pool.dispatch_window(batches)
    assert all(o.ok for o in outcomes)
    assert pool.retries_skipped_budget == 0


def test_service_floor_sheds_retries_that_cannot_finish_in_time():
    """A retry whose deadline has *not* passed at the failure frontier is
    still shed when the remaining budget is smaller than the measured
    per-batch service floor — no survivor can physically finish it in
    time, so retrying would burn a healthy enclave on a guaranteed miss.
    Counted separately from hard budget expiry."""
    import math

    from repro.serving import (
        STATUS_SHARD_FAILED,
        InferenceWorkerPool,
        PendingRequest,
        ScheduledBatch,
        SloClass,
        SloPolicy,
    )
    from repro.sharding import EnclaveShard

    dk = DarKnightConfig(virtual_batch_size=2, seed=0)
    rng = np.random.default_rng(6)
    xs = [rng.normal(size=16) for _ in range(4)]

    def _batches():
        reqs = [
            PendingRequest(
                request_id=i,
                tenant="hurried" if i == 2 else "calm",
                x=xs[i],
                arrival_time=0.0,
                enqueue_time=0.0,
            )
            for i in range(4)
        ]
        return [
            ScheduledBatch(
                batch_id=0, requests=reqs[:2], flush_time=0.0,
                trigger="size", slots=2, shard_id=0,
            ),
            ScheduledBatch(
                batch_id=1, requests=reqs[2:], flush_time=0.0,
                trigger="size", slots=2, shard_id=0,
            ),
        ]

    # Probe run on identical shards: measure the failure frontier and the
    # per-batch service floor the real pool will have observed.
    probe_shards = [EnclaveShard.provision(i, _tiny_net(), dk) for i in range(2)]
    probe = InferenceWorkerPool(shards=probe_shards)
    probe_shards[0].fail_after(1)
    assert all(o.ok for o in probe.dispatch_window(_batches()))
    floor = probe.service_floor
    assert math.isfinite(floor) and floor > 0
    frontier = probe_shards[0].timeline.free_at

    # Land the deadline strictly past the frontier but inside one floor:
    # not yet expired, physically unfinishable.
    slo = SloPolicy(
        classes={
            "tight": SloClass(name="tight", latency_budget=frontier + 0.5 * floor)
        },
        assignments={"hurried": "tight"},
    )
    shards = [EnclaveShard.provision(i, _tiny_net(), dk) for i in range(2)]
    pool = InferenceWorkerPool(shards=shards, slo=slo)
    assert pool.service_floor == math.inf  # nothing observed yet
    shards[0].fail_after(1)
    outcomes = pool.dispatch_window(_batches())
    by_id = {o.request_id: o for o in outcomes}
    assert by_id[0].ok and by_id[1].ok
    assert by_id[2].status == STATUS_SHARD_FAILED
    assert "budget exhausted" in by_id[2].error
    assert pool.retries_skipped_floor == 1
    assert pool.retries_skipped_budget == 0
    # The co-batched infinite-budget request still failed over fine.
    assert by_id[3].ok
    assert math.isfinite(pool.service_floor)
