"""Tests for the redundant-share integrity machinery (Section 4.4)."""

import numpy as np
import pytest

from repro.errors import IntegrityError
from repro.fieldmath import field_matmul
from repro.masking import (
    BackwardDecoder,
    BackwardEncoder,
    CoefficientSet,
    ForwardEncoder,
    IntegrityVerifier,
)


def _setup(frng, field, k=2, m=1, extra=1):
    coeffs = CoefficientSet.generate(frng, k=k, m=m, extra_shares=extra)
    x = frng.uniform((k, 6))
    batch = ForwardEncoder(coeffs, frng).encode(x)
    w = frng.uniform((4, 6))
    outputs = np.stack(
        [field_matmul(field, w, s.reshape(-1, 1)).ravel() for s in batch.shares]
    )
    return coeffs, batch, outputs


def test_honest_results_verify(frng, field):
    coeffs, _, outputs = _setup(frng, field)
    report = IntegrityVerifier(coeffs).verify_forward(outputs)
    assert report.consistent
    assert report.subsets_checked >= 2
    report.raise_on_failure()  # no-op when consistent


@pytest.mark.parametrize("victim", [0, 1, 2, 3])
def test_single_tamper_always_detected(frng, field, victim):
    coeffs, _, outputs = _setup(frng, field)
    tampered = outputs.copy()
    tampered[victim, 0] = field.add(tampered[victim, 0], 1)
    report = IntegrityVerifier(coeffs).verify_forward(tampered)
    assert not report.consistent
    with pytest.raises(IntegrityError):
        report.raise_on_failure()


def test_k_prime_minus_one_security(frng, field):
    """Even when all but one GPU lie, the decode disagreement is detected."""
    coeffs, _, outputs = _setup(frng, field, k=2, m=1, extra=1)
    tampered = outputs.copy()
    for victim in range(coeffs.n_shares - 1):
        tampered[victim] = field.add(tampered[victim], victim + 1)
    report = IntegrityVerifier(coeffs).verify_forward(tampered)
    assert not report.consistent


def test_localisation_with_two_redundant_shares(frng, field):
    """With >= 2 extra shares, the verifier can name the culprit."""
    coeffs, _, outputs = _setup(frng, field, k=2, m=1, extra=2)
    victim = 1
    tampered = outputs.copy()
    tampered[victim, 2] = field.add(tampered[victim, 2], 7)
    verifier = IntegrityVerifier(coeffs, max_subsets=12)
    report = verifier.verify_forward(tampered)
    assert not report.consistent
    assert victim in report.suspected_shares


def test_localisation_impossible_with_single_extra_share(frng, field):
    """One redundant share detects but cannot localise — expected behaviour."""
    coeffs, _, outputs = _setup(frng, field, k=2, m=1, extra=1)
    tampered = outputs.copy()
    tampered[0, 0] = field.add(tampered[0, 0], 5)
    report = IntegrityVerifier(coeffs).verify_forward(tampered)
    assert not report.consistent
    assert report.suspected_shares == ()


def test_verifier_requires_redundancy(frng):
    coeffs = CoefficientSet.generate(frng, k=2, m=1, extra_shares=0)
    with pytest.raises(IntegrityError):
        IntegrityVerifier(coeffs)


def test_verifier_requires_two_subsets(frng):
    coeffs = CoefficientSet.generate(frng, k=2, m=1, extra_shares=1)
    with pytest.raises(IntegrityError):
        IntegrityVerifier(coeffs, max_subsets=1)


def test_noise_coordinate_tampering_detected(frng, field):
    """A tamper that shifts only the recovered noise product is caught too."""
    coeffs, batch, outputs = _setup(frng, field)
    # Craft a tamper on the extra share (unused by the primary decode).
    tampered = outputs.copy()
    tampered[coeffs.n_shares - 1] = field.add(tampered[coeffs.n_shares - 1], 3)
    report = IntegrityVerifier(coeffs).verify_forward(tampered)
    assert not report.consistent


def test_backward_verification(frng, field):
    coeffs = CoefficientSet.generate(frng, k=2, m=1, extra_shares=1)
    x = frng.uniform((2, 5))
    batch = ForwardEncoder(coeffs, frng).encode(x)
    deltas = frng.uniform((2, 3))
    op = lambda d, xi: field_matmul(field, d.reshape(-1, 1), xi.reshape(1, -1))
    encoder = BackwardEncoder(coeffs)
    eq_primary = np.stack(
        [op(encoder.combine_deltas(deltas, j), batch.shares[j]) for j in range(coeffs.n_shares)]
    )
    primary = BackwardDecoder(coeffs).decode(eq_primary)

    alt = next(s for s in coeffs.iter_decoding_subsets() if s != coeffs.primary_subset)
    b_alt, gamma = coeffs.backward_matrices_for_subset(alt)
    eq_alt = np.stack(
        [
            op(field_matmul(field, b_alt[j].reshape(1, -1), deltas).ravel(), batch.shares[j])
            for j in range(coeffs.n_shares)
        ]
    )
    alternate = BackwardDecoder(coeffs).decode_with_matrices(eq_alt, b_alt, gamma)

    verifier = IntegrityVerifier(coeffs)
    ok = verifier.verify_backward({coeffs.primary_subset: primary, alt: alternate})
    assert ok.consistent

    bad = verifier.verify_backward(
        {coeffs.primary_subset: primary, alt: field.add(alternate, 1)}
    )
    assert not bad.consistent
    with pytest.raises(IntegrityError):
        verifier.verify_backward({coeffs.primary_subset: primary})
