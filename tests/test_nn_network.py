"""Tests for Sequential networks, loss, and optimiser."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    SGD,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    PlainBackend,
    ReLU,
    ResidualBlock,
    Sequential,
    SoftmaxCrossEntropy,
    StepDecaySchedule,
)


def _tiny_net(rng):
    return Sequential(
        [
            Conv2D(1, 4, 3, 1, 1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(4 * 4 * 4, 3, rng=rng),
        ],
        input_shape=(1, 8, 8),
    )


def test_shape_propagation_checked_at_construction(nprng):
    net = _tiny_net(nprng)
    assert net.output_shape == (3,)
    assert net.layer_shapes[0] == (1, 8, 8)
    with pytest.raises(ConfigurationError):
        Sequential(
            [Conv2D(3, 4, rng=nprng), Dense(10, 2, rng=nprng)], input_shape=(3, 8, 8)
        )


def test_empty_network_rejected():
    with pytest.raises(ConfigurationError):
        Sequential([], input_shape=(1, 4, 4))


def test_forward_validates_input_shape(nprng):
    net = _tiny_net(nprng)
    with pytest.raises(ConfigurationError):
        net.forward(nprng.normal(size=(2, 3, 8, 8)))


def test_parameters_walk_includes_residual_children(nprng):
    net = Sequential(
        [
            Conv2D(1, 2, 3, 1, 1, rng=nprng),
            ResidualBlock(body=[Conv2D(2, 2, 3, 1, 1, rng=nprng)]),
            Flatten(),
            Dense(2 * 16, 2, rng=nprng),
        ],
        input_shape=(1, 4, 4),
    )
    names = [layer.name for layer, _, _ in net.parameters()]
    assert len(names) >= 3
    assert net.n_params == sum(p.size for _, _, p in net.parameters())


def test_state_dict_roundtrip(nprng):
    net = _tiny_net(nprng)
    state = net.state_dict()
    for layer, name, param in net.parameters():
        param += 1.0
    net.load_state_dict(state)
    for key, value in net.state_dict().items():
        assert np.array_equal(value, state[key])


def test_load_state_dict_validation(nprng):
    net = _tiny_net(nprng)
    state = net.state_dict()
    missing = dict(list(state.items())[1:])
    with pytest.raises(ConfigurationError):
        net.load_state_dict(missing)
    bad_shape = dict(state)
    first = next(iter(bad_shape))
    bad_shape[first] = np.zeros((1, 1))
    with pytest.raises(ConfigurationError):
        net.load_state_dict(bad_shape)


def test_training_reduces_loss(nprng):
    net = _tiny_net(nprng)
    loss = SoftmaxCrossEntropy()
    opt = SGD(net, lr=0.05, momentum=0.9)
    x = nprng.normal(size=(12, 1, 8, 8))
    y = nprng.integers(0, 3, 12)
    losses = []
    for _ in range(25):
        logits = net.forward(x)
        losses.append(loss.forward(logits, y))
        net.backward(loss.backward())
        opt.step()
        opt.zero_grad()
    assert losses[-1] < 0.3 * losses[0]


def test_weight_decay_shrinks_weights(nprng):
    net = _tiny_net(nprng)
    opt = SGD(net, lr=0.1, weight_decay=0.5)
    before = float(np.sum(np.abs(net.layers[0].params["w"])))
    # No data gradient: decay only.
    for layer, name, _ in net.parameters():
        layer.grads[name] = np.zeros_like(layer.params[name])
    opt.step()
    after = float(np.sum(np.abs(net.layers[0].params["w"])))
    assert after < before


def test_sgd_validation(nprng):
    net = _tiny_net(nprng)
    with pytest.raises(ConfigurationError):
        SGD(net, lr=0)
    with pytest.raises(ConfigurationError):
        SGD(net, lr=0.1, momentum=1.0)
    with pytest.raises(ConfigurationError):
        SGD(net, lr=0.1, weight_decay=-1)


def test_step_decay_schedule(nprng):
    net = _tiny_net(nprng)
    opt = SGD(net, lr=1.0)
    sched = StepDecaySchedule(opt, every=2, factor=0.5)
    sched.epoch_end()
    assert opt.lr == 1.0
    sched.epoch_end()
    assert opt.lr == 0.5
    with pytest.raises(ConfigurationError):
        StepDecaySchedule(opt, every=0)
    with pytest.raises(ConfigurationError):
        StepDecaySchedule(opt, every=1, factor=0.0)


def test_loss_validation(nprng):
    loss = SoftmaxCrossEntropy()
    with pytest.raises(ConfigurationError):
        loss.forward(nprng.normal(size=(2, 3)), np.array([0]))
    with pytest.raises(ConfigurationError):
        loss.forward(nprng.normal(size=(2, 3)), np.array([0, 5]))
    with pytest.raises(ConfigurationError):
        SoftmaxCrossEntropy().backward()


def test_loss_gradient_numeric(nprng):
    loss = SoftmaxCrossEntropy()
    logits = nprng.normal(size=(3, 4))
    labels = np.array([0, 2, 3])
    loss.forward(logits, labels)
    grad = loss.backward()
    eps = 1e-6
    for idx in [(0, 0), (1, 2), (2, 1)]:
        lp = logits.copy(); lp[idx] += eps
        lm = logits.copy(); lm[idx] -= eps
        num = (loss.forward(lp, labels) - loss.forward(lm, labels)) / (2 * eps)
        assert grad[idx] == pytest.approx(num, rel=1e-4, abs=1e-8)


def test_accuracy():
    logits = np.array([[2.0, 1.0], [0.0, 3.0], [1.0, 0.0]])
    assert SoftmaxCrossEntropy.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


def test_predict_inference_mode(nprng):
    net = _tiny_net(nprng)
    out = net.predict(nprng.normal(size=(2, 1, 8, 8)))
    assert out.shape == (2, 3)
    # Inference must not populate caches: backward should fail.
    with pytest.raises(ConfigurationError):
        net.backward(np.ones((2, 3)), PlainBackend())
