"""Tests pinning the cost model to the paper's measured shapes."""

import pytest

from repro.errors import ConfigurationError
from repro.models import mobilenet_v2_spec, resnet50_spec, vgg16_spec
from repro.perf import CostModel, PhaseBreakdown, kernel_efficiency
from repro.runtime import DarKnightConfig


@pytest.fixture(scope="module")
def cm():
    return CostModel()


@pytest.fixture(scope="module")
def vgg():
    return vgg16_spec()


# ----------------------------------------------------------------------
# Table 1 calibration anchors
# ----------------------------------------------------------------------
def test_table1_forward_linear_ratio(cm, vgg):
    ratio = cm.sgx_linear_time(vgg) / cm.gpu_linear_time(vgg)
    assert ratio == pytest.approx(126.85, rel=0.02)


def test_table1_backward_linear_ratio(cm, vgg):
    ratio = cm.sgx_linear_time(vgg, backward=True) / cm.gpu_linear_time(
        vgg, backward=True
    )
    assert ratio == pytest.approx(149.13, rel=0.02)


def test_table1_relu_ratios(cm, vgg):
    sgx, gpu = cm.system.sgx, cm.system.gpu
    fwd = gpu.elementwise_ops_per_s / sgx.relu_rate(resident=False)
    bwd = gpu.elementwise_ops_per_s / sgx.relu_rate(resident=True)
    assert fwd == pytest.approx(119.60, rel=0.02)
    assert bwd == pytest.approx(6.59, rel=0.02)


def test_table1_maxpool_ratios(cm, vgg):
    sgx, gpu = cm.system.sgx, cm.system.gpu
    assert gpu.elementwise_ops_per_s / sgx.pool_rate(False) == pytest.approx(11.86, rel=0.02)
    assert gpu.elementwise_ops_per_s / sgx.pool_rate(True) == pytest.approx(5.47, rel=0.02)


# ----------------------------------------------------------------------
# predicted shapes
# ----------------------------------------------------------------------
def test_breakdown_fractions_sum_to_one(cm, vgg):
    dk = cm.darknight_training(vgg, DarKnightConfig(virtual_batch_size=2))
    assert sum(dk.fractions().values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in dk.fractions().values())


def test_training_speedup_ordering_matches_paper(cm):
    """VGG > ResNet > MobileNet, within sane factors of 8x / 4.2x / 2.2x."""
    cfg = DarKnightConfig(virtual_batch_size=2)
    speedups = {}
    for name, spec in [
        ("vgg", vgg16_spec()),
        ("resnet", resnet50_spec()),
        ("mobilenet", mobilenet_v2_spec()),
    ]:
        dk = cm.darknight_training(spec, cfg).total
        bl = cm.sgx_baseline_training(spec).total
        speedups[name] = bl / dk
    assert speedups["vgg"] > speedups["resnet"] > speedups["mobilenet"] > 1.5
    assert speedups["vgg"] == pytest.approx(8.0, rel=0.5)
    assert speedups["resnet"] == pytest.approx(4.2, rel=0.35)
    assert speedups["mobilenet"] == pytest.approx(2.2, rel=0.35)


def test_resnet_is_nonlinear_dominated(cm):
    dk = cm.darknight_training(resnet50_spec(), DarKnightConfig(virtual_batch_size=2))
    fr = dk.fractions()
    assert fr["nonlinear"] > 0.5  # the paper's 0.75
    assert fr["linear"] < 0.1


def test_baseline_is_linear_dominated_for_vgg(cm, vgg):
    bl = cm.sgx_baseline_training(vgg)
    assert bl.fractions()["linear"] > 0.7  # paper: 0.84


def test_gpu_only_upper_bound(cm, vgg):
    gp = cm.gpu_only_training(vgg, 3)
    dk = cm.darknight_training(vgg, DarKnightConfig(virtual_batch_size=2)).total
    bl = cm.sgx_baseline_training(vgg).total
    assert gp < dk < bl
    assert bl / gp > 100  # paper: 273x
    with pytest.raises(ConfigurationError):
        cm.gpu_only_training(vgg, 0)


def test_inference_ordering_matches_fig6a(cm, vgg):
    base = cm.sgx_baseline_inference(vgg).total
    slalom = cm.slalom_inference(vgg).total
    slalom_i = cm.slalom_inference(vgg, integrity=True).total
    dk4 = cm.darknight_inference(vgg, DarKnightConfig(virtual_batch_size=4)).total
    assert dk4 < slalom < slalom_i < base  # DarKnight wins, integrity costs


def test_epc_overflow_penalty_kicks_in_past_knee(cm, vgg):
    assert cm.epc_overflow_penalty(vgg, 4) == 0.0
    assert cm.epc_overflow_penalty(vgg, 5) > 0.0
    assert cm.epc_overflow_penalty(vgg, 6) > cm.epc_overflow_penalty(vgg, 5)


def test_aggregation_speedup_peaks_at_knee(cm):
    for spec in (vgg16_spec(), resnet50_spec(), mobilenet_v2_spec()):
        base = cm.aggregation_time(spec, 1)
        speedups = {k: base / cm.aggregation_time(spec, k) for k in (2, 3, 4, 5)}
        assert speedups[2] < speedups[3] < speedups[4]
        assert speedups[5] < speedups[4]  # Fig. 3's K=5 dip
    with pytest.raises(ConfigurationError):
        cm.aggregation_time(vgg16_spec(), 0)


def test_multithread_latency_rises(cm, vgg):
    lat = [cm.multithread_latency(vgg, t) for t in (1, 2, 3, 4)]
    assert lat[0] < lat[1] < lat[2] < lat[3]
    assert lat[3] / lat[0] > 3.0  # paper's Fig. 7 inversion
    with pytest.raises(ConfigurationError):
        cm.multithread_latency(vgg, 0)


def test_integrity_costs_extra(cm, vgg):
    plain = cm.darknight_training(vgg, DarKnightConfig(virtual_batch_size=3))
    verified = cm.darknight_training(
        vgg, DarKnightConfig(virtual_batch_size=3, integrity=True)
    )
    assert verified.total > plain.total


def test_kernel_efficiency_inference():
    # 1x1 conv inferred from macs == out_elems * in_channels.
    assert kernel_efficiency("conv", 64, 64 * 100, 100) == 0.35
    assert kernel_efficiency("conv", 64, 9 * 64 * 100, 100) == 1.0
    assert kernel_efficiency("depthwise_conv", 64, 1, 1) == 0.08
    assert kernel_efficiency("dense", 1, 1, 1) == 0.7


def test_phase_breakdown_zero_total_rejected():
    with pytest.raises(ConfigurationError):
        PhaseBreakdown(linear=0, nonlinear=0).fractions()
