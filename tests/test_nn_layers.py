"""Gradient checks and contract tests for every layer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    PlainBackend,
    ReLU,
    ResidualBlock,
)

BACKEND = PlainBackend()


def _numeric_param_grad(layer, x, param_name, idx, eps=1e-6):
    """Central-difference gradient of 0.5*||out||^2 wrt one parameter."""
    p = layer.params[param_name]
    p[idx] += eps
    plus = 0.5 * np.sum(layer.forward(x, BACKEND) ** 2)
    p[idx] -= 2 * eps
    minus = 0.5 * np.sum(layer.forward(x, BACKEND) ** 2)
    p[idx] += eps
    return (plus - minus) / (2 * eps)


def _check_param_grads(layer, x, samples=3, seed=0):
    out = layer.forward(x, BACKEND, training=True)
    layer.backward(out.copy(), BACKEND)  # d(0.5||out||^2)/dout = out
    rng = np.random.default_rng(seed)
    for name, grad in layer.grads.items():
        flat_indices = rng.choice(grad.size, size=min(samples, grad.size), replace=False)
        for flat in flat_indices:
            idx = np.unravel_index(flat, grad.shape)
            num = _numeric_param_grad(layer, x, name, idx)
            assert grad[idx] == pytest.approx(num, rel=1e-4, abs=1e-7), (name, idx)


def _check_input_grad(layer, x, samples=3, seed=1):
    out = layer.forward(x, BACKEND, training=True)
    grad_in = layer.backward(out.copy(), BACKEND)
    rng = np.random.default_rng(seed)
    eps = 1e-6
    for flat in rng.choice(x.size, size=min(samples, x.size), replace=False):
        idx = np.unravel_index(flat, x.shape)
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        num = (
            0.5 * np.sum(layer.forward(xp, BACKEND) ** 2)
            - 0.5 * np.sum(layer.forward(xm, BACKEND) ** 2)
        ) / (2 * eps)
        assert grad_in[idx] == pytest.approx(num, rel=1e-4, abs=1e-6), idx


@pytest.fixture()
def x_img(nprng):
    return nprng.normal(size=(3, 2, 6, 6))


def test_conv2d_grads(nprng, x_img):
    layer = Conv2D(2, 4, 3, 1, 1, rng=nprng)
    _check_param_grads(layer, x_img)
    _check_input_grad(layer, x_img)


def test_conv2d_strided_no_bias(nprng, x_img):
    layer = Conv2D(2, 4, 3, 2, 1, bias=False, rng=nprng)
    assert "b" not in layer.params
    assert layer.output_shape((2, 6, 6)) == (4, 3, 3)
    _check_param_grads(layer, x_img)


def test_depthwise_grads(nprng, x_img):
    layer = DepthwiseConv2D(2, 3, 1, 1, rng=nprng)
    _check_param_grads(layer, x_img)
    _check_input_grad(layer, x_img)


def test_dense_grads(nprng):
    layer = Dense(10, 4, rng=nprng)
    x = nprng.normal(size=(5, 10))
    _check_param_grads(layer, x)
    _check_input_grad(layer, x)


def test_batchnorm_grads(nprng, x_img):
    layer = BatchNorm2D(2)
    _check_param_grads(layer, x_img)
    _check_input_grad(layer, x_img)


def test_batchnorm_inference_uses_running_stats(nprng, x_img):
    layer = BatchNorm2D(2, momentum=0.5)
    for _ in range(10):
        layer.forward(x_img, BACKEND, training=True)
    out_eval = layer.forward(x_img, BACKEND, training=False)
    # Running stats converge toward batch stats, so eval ~ standardised.
    assert abs(out_eval.mean()) < 0.5


def test_relu_maxpool_flatten_gap(nprng, x_img):
    for layer in [ReLU(), MaxPool2D(2), AvgPool2D(2), Flatten(), GlobalAvgPool()]:
        _check_input_grad(layer, x_img)


def test_avgpool_shapes_and_values(nprng, x_img):
    layer = AvgPool2D(2)
    out = layer.forward(x_img, BACKEND)
    assert out.shape == (3, 2, 3, 3)
    assert out[0, 0, 0, 0] == pytest.approx(x_img[0, 0, :2, :2].mean())
    assert layer.output_shape((2, 6, 6)) == (2, 3, 3)
    with pytest.raises(ConfigurationError):
        AvgPool2D(0)


def test_residual_block_grads(nprng, x_img):
    block = ResidualBlock(
        body=[Conv2D(2, 2, 3, 1, 1, rng=nprng), BatchNorm2D(2)]
    )
    _check_input_grad(block, x_img)
    assert block.n_params > 0


def test_residual_block_with_projection(nprng, x_img):
    block = ResidualBlock(
        body=[Conv2D(2, 4, 3, 1, 1, rng=nprng)],
        shortcut=[Conv2D(2, 4, 1, 1, 0, rng=nprng)],
    )
    out = block.forward(x_img, BACKEND)
    assert out.shape == (3, 4, 6, 6)
    assert block.output_shape((2, 6, 6)) == (4, 6, 6)
    _check_input_grad(block, x_img)


def test_residual_shape_mismatch_raises(nprng, x_img):
    block = ResidualBlock(body=[Conv2D(2, 4, 3, 1, 1, rng=nprng)])
    with pytest.raises(ConfigurationError):
        block.forward(x_img, BACKEND)


def test_backward_before_forward_raises(nprng, x_img):
    for layer in [
        Conv2D(2, 2, rng=nprng),
        Dense(3, 2, rng=nprng),
        ReLU(),
        MaxPool2D(2),
        AvgPool2D(2),
        Flatten(),
        GlobalAvgPool(),
        BatchNorm2D(2),
        DepthwiseConv2D(2, rng=nprng),
    ]:
        with pytest.raises(ConfigurationError):
            layer.backward(np.ones((1, 1)), BACKEND)


def test_inference_forward_does_not_cache(nprng, x_img):
    layer = Conv2D(2, 2, rng=nprng)
    layer.forward(x_img, BACKEND, training=False)
    with pytest.raises(ConfigurationError):
        layer.backward(np.ones((3, 2, 6, 6)), BACKEND)


def test_output_shape_validation(nprng):
    with pytest.raises(ConfigurationError):
        Conv2D(2, 2, rng=nprng).output_shape((3, 6, 6))
    with pytest.raises(ConfigurationError):
        Dense(10, 2, rng=nprng).output_shape((11,))
    with pytest.raises(ConfigurationError):
        BatchNorm2D(2).output_shape((3, 6, 6))
    with pytest.raises(ConfigurationError):
        DepthwiseConv2D(2, rng=nprng).output_shape((3, 6, 6))


def test_geometry_validation(nprng):
    with pytest.raises(ConfigurationError):
        Conv2D(0, 2, rng=nprng)
    with pytest.raises(ConfigurationError):
        Dense(0, 2, rng=nprng)
    with pytest.raises(ConfigurationError):
        MaxPool2D(0)
    with pytest.raises(ConfigurationError):
        BatchNorm2D(0)
    with pytest.raises(ConfigurationError):
        BatchNorm2D(2, momentum=1.5)
    with pytest.raises(ConfigurationError):
        ResidualBlock(body=[])


def test_unique_auto_names(nprng):
    a = Conv2D(1, 1, rng=nprng)
    b = Conv2D(1, 1, rng=nprng)
    assert a.name != b.name
    assert Dense(2, 2, rng=nprng, name="head").name == "head"


def test_n_params(nprng):
    layer = Conv2D(2, 4, 3, rng=nprng)
    assert layer.n_params == 4 * 2 * 9 + 4
