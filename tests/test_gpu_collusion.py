"""Tests certifying the collusion-privacy boundary (Sections 4.5 / 5)."""

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.gpu import CollusionPool
from repro.masking import CoefficientSet, ForwardEncoder


def _encode(frng, k, m, extra=0, features=32):
    coeffs = CoefficientSet.generate(frng, k=k, m=m, extra_shares=extra)
    x = frng.uniform((k, features))
    batch = ForwardEncoder(coeffs, frng).encode(x)
    return coeffs, x, batch


def test_at_most_m_colluders_learn_nothing(frng, field):
    """<= M pooled shares: attack fails even with leaked coefficients."""
    coeffs, _, batch = _encode(frng, k=3, m=2)
    for coalition in [(0,), (1,), (0, 1), (2, 4), (3, 1)]:
        if len(coalition) > 2:
            continue
        pool = CollusionPool(field, coalition, batch.shares[list(coalition)])
        result = pool.attack_with_known_coefficients(coeffs)
        assert not result.success, coalition
        assert "uniform" in result.reason or "underdetermined" in result.reason


def test_m_plus_one_still_underdetermined(frng, field):
    """M < |coalition| < K+M: noise rank deficiency exists but the system
    is still underdetermined — no full reconstruction."""
    coeffs, _, batch = _encode(frng, k=3, m=2)
    coalition = (0, 1, 2)  # 3 > M=2, but < K+M=5
    pool = CollusionPool(field, coalition, batch.shares[list(coalition)])
    result = pool.attack_with_known_coefficients(coeffs)
    assert not result.success


def test_full_subset_with_known_coefficients_reconstructs(frng, field):
    """The theorem is tight: K+M shares + leaked A = full recovery."""
    coeffs, x, batch = _encode(frng, k=3, m=2)
    coalition = tuple(range(5))
    pool = CollusionPool(field, coalition, batch.shares[list(coalition)])
    result = pool.attack_with_known_coefficients(coeffs)
    assert result.success
    assert np.array_equal(result.recovered, x)


def test_pooled_shares_look_uniform(frng, field):
    """Chi-square of pooled shares stays near its dof (uniformity)."""
    coeffs, _, batch = _encode(frng, k=2, m=1, features=4096)
    pool = CollusionPool(field, (0,), batch.shares[:1])
    stat = pool.uniformity_statistic(n_bins=64)
    # dof = 63; a catastrophically non-uniform stream would be >> 200.
    assert stat < 150.0


def test_pool_validation(field, frng):
    with pytest.raises(EncodingError):
        CollusionPool(field, (0, 1), frng.uniform((1, 4)))


def test_pool_size(field, frng):
    pool = CollusionPool(field, (0, 2), frng.uniform((2, 4)))
    assert pool.size == 2
