"""Unit tests for layer-partitioned pipeline groups.

Covers the four pieces the ``partition`` module composes: the
``PartitionSpec`` config grammar, the bottleneck-balancing
``LayerPartitionPlanner`` over the flattened execution plan, the sealed
activation hand-off (AEAD round-trip + tamper rejection), and
``PipelineGroup`` windows — bit-identical to a single whole-model
enclave, mid-window member failure surfacing as a *group*-level
``ShardFailedError`` with a reusable completed prefix, and the
attestation mesh gating every hop.
"""

import dataclasses

import numpy as np
import pytest

from repro.comm import LinkModel
from repro.comm.secure_channel import SecureChannel
from repro.errors import (
    AttestationError,
    CommunicationError,
    ConfigurationError,
    ShardFailedError,
)
from repro.models import build_mini_resnet
from repro.nn import Dense, ReLU, Sequential
from repro.runtime import DarKnightConfig
from repro.sharding import (
    AttestationMesh,
    EnclaveShard,
    LayerPartitionPlanner,
    PartitionSpec,
    PipelineGroup,
    open_activations,
    seal_activations,
)

K = 2


def _resnet(seed=0):
    rng = np.random.default_rng(seed)
    return build_mini_resnet(input_shape=(3, 8, 8), n_classes=4, rng=rng, width=4)


def _dense_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def _cfg(**kwargs):
    kwargs.setdefault("virtual_batch_size", K)
    kwargs.setdefault("seed", 0)
    return DarKnightConfig(**kwargs)


def _group(net, cfg, n_stages, ranges=None, base_id=0, group_id=100):
    shards = [EnclaveShard.provision(base_id + i, net, cfg) for i in range(n_stages)]
    mesh = AttestationMesh(shards).establish()
    if ranges is None:
        ranges = LayerPartitionPlanner(net).plan(n_stages)
    return PipelineGroup(group_id, shards, ranges, mesh), shards


def _reference(net, cfg, xs, shard_id=9):
    """Masked single-enclave logits — the whole-model baseline."""
    shard = EnclaveShard.provision(shard_id, net, cfg)
    groups, _ = shard.run_window([(x, 0.0) for x in xs])
    return [np.asarray(g.output) for g in groups]


# ----------------------------------------------------------------------
# PartitionSpec grammar
# ----------------------------------------------------------------------
def test_partition_spec_parses_and_round_trips():
    rep = PartitionSpec.parse("replicated")
    assert not rep.layered and rep.n_stages == 1 and str(rep) == "replicated"
    lay = PartitionSpec.parse("layered:3")
    assert lay.layered and lay.n_stages == 3 and str(lay) == "layered:3"
    assert PartitionSpec.parse(str(lay)) == lay


@pytest.mark.parametrize(
    "text", ["layered", "layered:", "layered:x", "layered:0", "layered:-2", "mesh", 3]
)
def test_partition_spec_rejects_bad_modes(text):
    with pytest.raises(ConfigurationError):
        PartitionSpec.parse(text)


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
def test_planner_ranges_are_contiguous_and_cover_the_plan():
    net = _resnet()
    planner = LayerPartitionPlanner(net)
    n_steps = len(net.execution_plan())
    assert planner.plan(1) == [(0, n_steps)]
    for n in (2, 3, 4):
        ranges = planner.plan(n)
        assert len(ranges) == n
        assert ranges[0][0] == 0 and ranges[-1][1] == n_steps
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        assert all(hi > lo for lo, hi in ranges)


def test_planner_bottleneck_never_grows_with_more_partitions():
    planner = LayerPartitionPlanner(_resnet())
    bottlenecks = [planner.bottleneck(planner.plan(n)) for n in (1, 2, 3, 4)]
    assert all(b > 0 for b in bottlenecks)
    for wider, narrower in zip(bottlenecks, bottlenecks[1:]):
        assert narrower <= wider


def test_planner_epc_and_cut_accounting():
    net = _resnet()
    planner = LayerPartitionPlanner(net)
    n_steps = len(net.execution_plan())
    ranges = planner.plan(3)
    epc = planner.range_epc_bytes(ranges)
    assert len(epc) == 3
    # Ranges partition the plan, so EPC footprints sum to the whole model.
    assert sum(epc) == sum(planner.step_param_bytes())
    assert all(planner.cut_bytes(cut) > 0 for cut in range(1, n_steps))
    assert len(planner.step_costs()) == n_steps


def test_planner_rejects_degenerate_partition_counts():
    planner = LayerPartitionPlanner(_dense_net())  # 3 plan steps
    with pytest.raises(ConfigurationError):
        planner.plan(0)
    with pytest.raises(ConfigurationError):
        planner.plan(4)


# ----------------------------------------------------------------------
# sealed activation hand-off
# ----------------------------------------------------------------------
def _channel_pair():
    rng = np.random.default_rng(0)
    return SecureChannel.establish_pair("shard0", "shard1", LinkModel(), rng)


def test_sealed_activations_round_trip():
    tx, rx = _channel_pair()
    rng = np.random.default_rng(1)
    values = {4: rng.standard_normal((K, 8)), 0: rng.standard_normal((K, 3, 4, 4))}
    sealed = seal_activations(tx, values)
    assert [step for step, _ in sealed.envelopes] == [0, 4]
    assert sealed.nbytes > 0
    opened = open_activations(rx, sealed)
    assert set(opened) == {0, 4}
    for step in values:
        assert np.array_equal(opened[step], values[step])


def test_tampered_envelope_is_rejected():
    tx, rx = _channel_pair()
    sealed = seal_activations(tx, {0: np.ones((K, 4))})
    step, env = sealed.envelopes[0]
    flipped = bytes([env.ciphertext.data[0] ^ 0x01]) + env.ciphertext.data[1:]
    bad_env = dataclasses.replace(
        env, ciphertext=dataclasses.replace(env.ciphertext, data=flipped)
    )
    bad = dataclasses.replace(sealed, envelopes=((step, bad_env),))
    with pytest.raises(CommunicationError):
        open_activations(rx, bad)


# ----------------------------------------------------------------------
# PipelineGroup construction
# ----------------------------------------------------------------------
def test_group_rejects_bad_member_range_combinations():
    net = _dense_net()
    cfg = _cfg()
    shards = [EnclaveShard.provision(i, net, cfg) for i in range(2)]
    mesh = AttestationMesh(shards).establish()
    with pytest.raises(ConfigurationError):
        PipelineGroup(0, [], [], mesh)
    with pytest.raises(ConfigurationError):
        PipelineGroup(0, shards, [(0, 3)], mesh)
    with pytest.raises(ConfigurationError):
        PipelineGroup(0, shards, [(0, 1), (2, 3)], mesh)


def test_group_refuses_unattested_hops():
    """No verified mesh link between consecutive members → no channel."""
    net = _dense_net()
    cfg = _cfg()
    shards = [EnclaveShard.provision(i, net, cfg) for i in range(2)]
    mesh = AttestationMesh(shards)  # never established
    with pytest.raises(AttestationError):
        PipelineGroup(0, shards, [(0, 1), (1, 3)], mesh)


def test_group_duck_types_the_shard_surface():
    group, shards = _group(_dense_net(), _cfg(), 2)
    assert group.shard_id == 100
    assert group.enclave is shards[0].enclave
    assert group.engine is shards[0].engine
    assert group.n_gpus == sum(s.n_gpus for s in shards)
    assert group.healthy and group.state == "active" and not group.draining
    group.kill()
    assert not group.healthy and group.state == "failed"
    with pytest.raises(ShardFailedError):
        group.run_window([(np.zeros((K, 16)), 0.0)])


# ----------------------------------------------------------------------
# windows: bit-identity and failover
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_stages", [2, 3])
def test_group_window_is_bit_identical_to_single_enclave(n_stages):
    net = _resnet()
    cfg = _cfg()
    rng = np.random.default_rng(2)
    xs = [rng.standard_normal((K, 3, 8, 8)) for _ in range(3)]
    reference = _reference(net, cfg, xs)
    group, _ = _group(net, cfg, n_stages)
    finals, stats = group.run_window([(x, 0.0) for x in xs])
    assert len(finals) == 3
    for g, ref in zip(finals, reference):
        assert np.array_equal(np.asarray(g.output), ref)
    assert stats.n_jobs > 0 and stats.finish > stats.start
    assert group.batches_run == 3
    assert group.timeline.free_at > 0.0


def test_member_failure_mid_window_fails_the_group_with_a_prefix():
    net = _resnet()
    cfg = _cfg()
    rng = np.random.default_rng(3)
    xs = [rng.standard_normal((K, 3, 8, 8)) for _ in range(3)]
    reference = _reference(net, cfg, xs)
    group, shards = _group(net, cfg, 2)
    shards[1].fail_after(1)  # second stage dies after one batch
    with pytest.raises(ShardFailedError) as excinfo:
        group.run_window([(x, 0.0) for x in xs])
    exc = excinfo.value
    # Group-granular failure: the router sees the unit id, not a member.
    assert exc.shard_id == 100
    assert "lost member shard 1" in str(exc)
    assert exc.remaining_from == 1
    assert len(exc.completed) == 1
    (done_groups, _), = exc.completed
    assert np.array_equal(np.asarray(done_groups[0].output), reference[0])
    assert not group.healthy and group.state == "failed"


def test_sub_outputs_fan_out_per_member():
    net = _dense_net()
    group, shards = _group(net, _cfg(), 2)
    rng = np.random.default_rng(4)
    xs = [rng.standard_normal((K, 16)) for _ in range(2)]
    finals, _ = group.run_window([(x, 0.0) for x in xs])
    final_rows = [np.asarray(g.output) for g in finals]
    # The exit member commits the response logits themselves.
    exit_rows = group.sub_outputs(shards[-1].shard_id, 2, final_rows)
    for got, want in zip(exit_rows, final_rows):
        assert np.array_equal(got, want)
    # Interior members commit the flattened live values of their stage.
    entry_rows = group.sub_outputs(shards[0].shard_id, 2, final_rows)
    assert len(entry_rows) == 2
    for row in entry_rows:
        assert row is not None and row.shape[0] == K
