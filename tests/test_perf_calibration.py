"""Tests for the Table-1 calibration utility."""

import pytest

from repro.errors import ConfigurationError
from repro.models import vgg16_spec
from repro.perf import (
    CostModel,
    GpuProfile,
    SgxProfile,
    SystemProfile,
    Table1Targets,
    calibrate_sgx_from_table1,
    verify_calibration,
)


def test_default_targets_reproduce_shipped_profiles():
    sgx, gpu = calibrate_sgx_from_table1(Table1Targets())
    shipped_sgx, shipped_gpu = SgxProfile(), GpuProfile()
    assert sgx.linear_macs_per_s == pytest.approx(shipped_sgx.linear_macs_per_s, rel=0.01)
    assert gpu.linear_macs_per_s_backward == pytest.approx(
        shipped_gpu.linear_macs_per_s_backward, rel=0.01
    )
    assert verify_calibration(sgx, gpu, Table1Targets())


def test_custom_targets_hit_exactly():
    targets = Table1Targets(
        linear_forward=100.0,
        linear_backward=120.0,
        maxpool_forward=10.0,
        maxpool_backward=4.0,
        relu_forward=80.0,
        relu_backward=5.0,
    )
    sgx, gpu = calibrate_sgx_from_table1(targets)
    assert verify_calibration(sgx, gpu, targets)
    assert not verify_calibration(sgx, gpu, Table1Targets())  # wrong targets fail


def test_calibrated_system_predicts_targets_through_cost_model():
    targets = Table1Targets(linear_forward=200.0, linear_backward=250.0)
    sgx, gpu = calibrate_sgx_from_table1(targets)
    cm = CostModel(SystemProfile(sgx=sgx, gpu=gpu))
    spec = vgg16_spec()
    assert cm.sgx_linear_time(spec) / cm.gpu_linear_time(spec) == pytest.approx(200.0)
    assert cm.sgx_linear_time(spec, backward=True) / cm.gpu_linear_time(
        spec, backward=True
    ) == pytest.approx(250.0)


def test_targets_validation():
    with pytest.raises(ConfigurationError):
        Table1Targets(linear_forward=0.0)
    with pytest.raises(ConfigurationError):
        Table1Targets(relu_backward=-1.0)


def test_non_targeted_fields_preserved():
    base = SgxProfile()
    sgx, _ = calibrate_sgx_from_table1(Table1Targets(), base=base)
    assert sgx.field_macs_per_s == base.field_macs_per_s
    assert sgx.epc_usable_bytes == base.epc_usable_bytes
