"""Property tests: backward masking recovers the aggregate update exactly
(Sections 4.2-4.3, the trace-identity proof)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.fieldmath import FieldRng, PrimeField, field_matmul
from repro.masking import (
    BackwardDecoder,
    BackwardEncoder,
    CoefficientSet,
    ForwardEncoder,
    reference_aggregate,
)


def _grad_op(field):
    """The dense-layer bilinear <delta, x> -> delta ⊗ x^T."""
    return lambda d, x: field_matmul(field, d.reshape(-1, 1), x.reshape(1, -1))


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(1, 4),
    m=st.integers(1, 2),
    extra=st.integers(0, 1),
    seed=st.integers(0, 5000),
)
def test_aggregate_gradient_decodes_exactly(k, m, extra, seed):
    field = PrimeField()
    rng = FieldRng(field, seed)
    coeffs = CoefficientSet.generate(rng, k=k, m=m, extra_shares=extra)
    x = rng.uniform((k, 6))
    batch = ForwardEncoder(coeffs, rng).encode(x)
    deltas = rng.uniform((k, 3))
    encoder = BackwardEncoder(coeffs)
    op = _grad_op(field)
    equations = np.stack(
        [
            op(encoder.combine_deltas(deltas, j), batch.shares[j])
            for j in range(coeffs.n_shares)
        ]
    )
    aggregate = BackwardDecoder(coeffs).decode(equations)
    expected = reference_aggregate(field, deltas, x, op)
    assert np.array_equal(aggregate, expected)


def test_combine_all_matches_per_share(frng, field):
    coeffs = CoefficientSet.generate(frng, k=3, m=1, extra_shares=1)
    deltas = frng.uniform((3, 4))
    encoder = BackwardEncoder(coeffs)
    combined = encoder.combine_all(deltas)
    for j in range(coeffs.n_shares):
        assert np.array_equal(combined[j], encoder.combine_deltas(deltas, j))


def test_alternate_b_matrix_decode(frng, field):
    """Decoding under a B supported on a different subset gives the same sum."""
    coeffs = CoefficientSet.generate(frng, k=2, m=1, extra_shares=1)
    x = frng.uniform((2, 5))
    batch = ForwardEncoder(coeffs, frng).encode(x)
    deltas = frng.uniform((2, 3))
    op = _grad_op(field)
    expected = reference_aggregate(field, deltas, x, op)

    alt = next(s for s in coeffs.iter_decoding_subsets() if s != coeffs.primary_subset)
    b_alt, gamma = coeffs.backward_matrices_for_subset(alt)
    equations = np.stack(
        [
            op(
                field_matmul(field, b_alt[j].reshape(1, -1), deltas).ravel(),
                batch.shares[j],
            )
            for j in range(coeffs.n_shares)
        ]
    )
    aggregate = BackwardDecoder(coeffs).decode_with_matrices(equations, b_alt, gamma)
    assert np.array_equal(aggregate, expected)


def test_combine_validation(frng):
    coeffs = CoefficientSet.generate(frng, k=2, m=1)
    encoder = BackwardEncoder(coeffs)
    with pytest.raises(EncodingError):
        encoder.combine_deltas(frng.uniform((3, 4)), 0)  # wrong K
    with pytest.raises(EncodingError):
        encoder.combine_deltas(frng.uniform((2, 4)), 99)  # bad share
    with pytest.raises(EncodingError):
        encoder.combine_all(frng.uniform((1, 4)))


def test_decode_validation(frng):
    coeffs = CoefficientSet.generate(frng, k=2, m=1)
    decoder = BackwardDecoder(coeffs)
    with pytest.raises(DecodingError):
        decoder.decode(frng.uniform((1, 4)))
    with pytest.raises(DecodingError):
        decoder.decode_with_matrices(frng.uniform((1, 4)), None, coeffs.gamma)


def test_reference_aggregate_validation(field, frng):
    op = _grad_op(field)
    with pytest.raises(EncodingError):
        reference_aggregate(field, frng.uniform((2, 3)), frng.uniform((3, 4)), op)
    with pytest.raises(EncodingError):
        reference_aggregate(
            field, frng.uniform((0, 3)), frng.uniform((0, 4)), op
        )


def test_conv_shaped_bilinear_aggregate(frng, field):
    """The protocol is operator-agnostic: works for conv grad_w too."""
    from repro.nn import functional as F

    coeffs = CoefficientSet.generate(frng, k=2, m=1)
    x = frng.uniform((2, 2, 5, 5))  # (K, C, H, W)
    batch = ForwardEncoder(coeffs, frng).encode(x)
    deltas = frng.uniform((2, 3, 3, 3))  # (K, F, OH, OW)
    matmul = lambda a, b: field_matmul(field, a, b)

    def op(d, xi):
        return field.element(
            F.conv2d_grad_w(xi[None], d[None], 3, 3, matmul, stride=1, pad=0)
        )

    encoder = BackwardEncoder(coeffs)
    equations = np.stack(
        [
            op(encoder.combine_deltas(deltas, j), batch.shares[j])
            for j in range(coeffs.n_shares)
        ]
    )
    aggregate = BackwardDecoder(coeffs).decode(equations)
    expected = reference_aggregate(field, deltas, x, op)
    assert np.array_equal(aggregate, expected)
