"""Tests for the cross-enclave local-attestation mesh and shard lifecycle."""

import numpy as np
import pytest

from repro.errors import AttestationError, ShardFailedError
from repro.nn import Dense, Sequential
from repro.runtime.config import DarKnightConfig
from repro.sharding import AttestationMesh, EnclaveShard


def _net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(8, 4, rng=rng)], (8,))


def _shards(n, code_identity="darknight-enclave-v1"):
    net = _net()
    dk = DarKnightConfig(virtual_batch_size=2, seed=0)
    return [
        EnclaveShard.provision(i, net, dk, code_identity=code_identity)
        for i in range(n)
    ]


def test_mesh_establishes_all_pairwise_links():
    shards = _shards(3)
    mesh = AttestationMesh(shards).establish()
    assert mesh.handshakes == 3 * 2
    assert mesh.n_links == 6
    for a in range(3):
        for b in range(3):
            assert mesh.verified(a, b)
    # establish() is idempotent: no re-handshaking on a second call.
    mesh.establish()
    assert mesh.handshakes == 6


def test_mesh_refuses_an_impostor_shard():
    shards = _shards(2)
    rogue = EnclaveShard.provision(
        2, _net(), DarKnightConfig(virtual_batch_size=2, seed=0),
        code_identity="trojaned-enclave",
    )
    mesh = AttestationMesh(shards + [rogue])
    with pytest.raises(AttestationError):
        mesh.establish()


def test_unverified_link_blocks_migration():
    shards = _shards(2)
    mesh = AttestationMesh(shards)  # never established
    assert not mesh.verified(0, 1)
    with pytest.raises(AttestationError):
        mesh.assert_verified(0, 1)
    # Same-shard hand-offs are trivially fine.
    mesh.assert_verified(1, 1)


def test_shard_seeds_derive_from_config_and_shard_id():
    shards = _shards(2)
    # Distinct enclaves, same measurement, independent masking randomness.
    assert shards[0].enclave is not shards[1].enclave
    assert shards[0].enclave.measurement == shards[1].enclave.measurement
    assert shards[0].backend.config.seed == 0
    assert shards[1].backend.config.seed == 1


def test_dead_shard_refuses_dispatch():
    shard = _shards(1)[0]
    shard.kill()
    with pytest.raises(ShardFailedError):
        shard.run_window([(np.zeros((2, 8)), 0.0)])


def test_fail_after_dies_mid_window_with_completed_prefix():
    shard = _shards(1)[0]
    shard.fail_after(2)
    x = np.random.default_rng(0).normal(size=(2, 8))
    items = [(x, 0.0), (x, 0.0), (x, 0.0)]
    with pytest.raises(ShardFailedError) as excinfo:
        shard.run_window(items)
    err = excinfo.value
    assert err.shard_id == 0
    assert err.remaining_from == 2
    assert len(err.completed) == 2
    # The completed prefix carries real results: nothing is dropped.
    for groups, stats in err.completed:
        assert groups[0].output.shape == (2, 4)
        assert stats.n_jobs == 1
    assert not shard.healthy
    assert shard.batches_run == 2
