"""Tests for the detect-quarantine-retry integrity recovery extension."""

import numpy as np
import pytest

from repro.errors import IntegrityError
from repro.fieldmath import FieldRng, PrimeField, field_matmul
from repro.gpu import GpuCluster, RandomTamper
from repro.runtime import RecoveringExecutor

K, M = 2, 1
N_SHARES = K + M + 1  # one redundant share for detection


def _gpu_op(cluster, w):
    """Dense op via the device method (so fault injectors apply)."""
    cluster.broadcast_weights("w", w)

    def op(device, key):
        return device.dense_forward(key, "w")

    return op


@pytest.fixture()
def field():
    return PrimeField()


@pytest.fixture()
def rng(field):
    return FieldRng(field, seed=0)


@pytest.fixture()
def inputs(rng):
    return rng.uniform((K, 6))


@pytest.fixture()
def weights(rng):
    return rng.uniform((6, 3))


def _expected(field, inputs, weights):
    return np.stack(
        [field_matmul(field, x.reshape(1, -1), weights).ravel() for x in inputs]
    )


def test_honest_cluster_needs_one_attempt(field, rng, inputs, weights):
    cluster = GpuCluster(field, N_SHARES)
    executor = RecoveringExecutor(cluster, rng)
    result, report = executor.execute_forward(inputs, K, M, _gpu_op(cluster, weights))
    assert np.array_equal(result, _expected(field, inputs, weights))
    assert report.attempts == 1
    assert not report.was_attacked
    assert report.recovered


def test_byzantine_device_is_benched_and_computation_recovers(field, rng, inputs, weights):
    """One persistent liar + one spare device: recovery succeeds."""
    cluster = GpuCluster(
        field,
        N_SHARES + 1,
        fault_injectors={1: RandomTamper(field, probability=1.0, seed=3)},
    )
    executor = RecoveringExecutor(cluster, rng)
    result, report = executor.execute_forward(inputs, K, M, _gpu_op(cluster, weights))
    assert np.array_equal(result, _expected(field, inputs, weights))
    assert report.was_attacked
    assert 1 in executor.quarantined_devices
    assert report.recovered


def test_no_spare_capacity_raises(field, rng, inputs, weights):
    cluster = GpuCluster(
        field,
        N_SHARES,  # no spare: quarantining anyone drops below the share count
        fault_injectors={0: RandomTamper(field, probability=1.0, seed=3)},
    )
    executor = RecoveringExecutor(cluster, rng)
    with pytest.raises(IntegrityError):
        executor.execute_forward(inputs, K, M, _gpu_op(cluster, weights))


def test_fully_byzantine_pool_exhausts_retries(field, rng, inputs, weights):
    cluster = GpuCluster(
        field,
        N_SHARES + 3,
        fault_injectors={
            i: RandomTamper(field, probability=1.0, seed=i) for i in range(N_SHARES + 3)
        },
    )
    executor = RecoveringExecutor(cluster, rng, max_retries=3)
    with pytest.raises(IntegrityError):
        executor.execute_forward(inputs, K, M, _gpu_op(cluster, weights))


def test_pardon_returns_device_to_pool(field, rng, inputs, weights):
    cluster = GpuCluster(
        field,
        N_SHARES + 1,
        fault_injectors={0: RandomTamper(field, probability=1.0, seed=2)},
    )
    executor = RecoveringExecutor(cluster, rng)
    executor.execute_forward(inputs, K, M, _gpu_op(cluster, weights))
    benched = executor.quarantined_devices
    assert benched
    executor.pardon(benched[0])
    assert benched[0] not in executor.quarantined_devices


def test_invalid_retry_budget(field, rng):
    with pytest.raises(IntegrityError):
        RecoveringExecutor(GpuCluster(field, 4), rng, max_retries=0)


def test_intermittent_attacker_eventually_benched(field, rng, inputs, weights):
    """A liar that only sometimes tampers still gets caught and benched."""
    cluster = GpuCluster(
        field,
        N_SHARES + 1,
        fault_injectors={2: RandomTamper(field, probability=0.7, seed=9)},
    )
    executor = RecoveringExecutor(cluster, rng, max_retries=8)
    for _ in range(4):
        result, _ = executor.execute_forward(inputs, K, M, _gpu_op(cluster, weights))
        assert np.array_equal(result, _expected(field, inputs, weights))
