"""Serving-path tests for the verifiable audit trail.

The contract under test: with ``ServingConfig.audit`` set, every flush
window — completed, aborted-and-isolated, failed-over, terminally failed
— lands on the owning shard's hash chain; every completed request yields
an inclusion proof that verifies offline against its shard's chained
head (and against nothing else); and with auditing *off* the served
logits are bit-identical to an audited run of the same trace.
"""

import json

import numpy as np
import pytest

from repro.audit import AuditLog, load_manifest, manifest_config, prove, verify_proof
from repro.fieldmath import PrimeField
from repro.gpu import GpuCluster, RandomTamper
from repro.nn import Dense, ReLU, Sequential
from repro.runtime import DarKnightConfig
from repro.serving import (
    STATUS_INTEGRITY_FAILED,
    AuditConfig,
    PrivateInferenceServer,
    ServingConfig,
    synthetic_trace,
)


def _tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def _serve(trace, *, audit=None, num_shards=1, **dk_kwargs):
    dk = DarKnightConfig(
        virtual_batch_size=4, seed=0, num_shards=num_shards, **dk_kwargs
    )
    config = ServingConfig(darknight=dk, queue_capacity=512, audit=audit)
    server = PrivateInferenceServer(_tiny_net(), config)
    return server, server.serve_trace(trace)


def test_audit_off_is_bit_identical_and_commits_nothing():
    trace = synthetic_trace(24, (16,), n_tenants=4, mean_interarrival=1e-4, seed=3)
    _, plain = _serve(trace, num_shards=2)
    server, audited = _serve(trace, audit=AuditConfig(), num_shards=2)
    assert plain.audit_roots is None and audited.audit_roots is not None
    a = {o.request_id: o.logits for o in audited.completed}
    for o in plain.completed:
        assert np.array_equal(o.logits, a[o.request_id])
    assert plain.metrics.audit_windows == 0
    assert server.metrics.audit_windows == server.audit.windows_committed > 0
    assert server.metrics.audit_leaves == 24
    assert server.metrics.audit_bytes > 0


def test_every_completed_request_proves_on_exactly_one_shard():
    trace = synthetic_trace(40, (16,), n_tenants=6, mean_interarrival=1e-4, seed=7)
    server, report = _serve(trace, audit=AuditConfig(), num_shards=3)
    from repro.audit import array_digest

    assert len(report.completed) == 40
    assert server.audit.verify() == server.audit.windows_committed
    roots = report.audit_roots
    for outcome in report.completed:
        holders = []
        for sid, log in server.audit.logs.items():
            try:
                proof = prove(log, outcome.request_id)
            except Exception:
                continue
            holders.append(sid)
            assert verify_proof(proof, roots[sid])
            for other_sid, other_root in roots.items():
                if other_sid != sid:
                    assert not verify_proof(proof, other_root)
            # The committed output digest is the served response's digest.
            assert proof.leaf["output_digest"] == array_digest(outcome.logits)
        assert len(holders) == 1, outcome.request_id


def test_audit_logs_persist_with_a_replayable_manifest(tmp_path):
    trace = synthetic_trace(16, (16,), n_tenants=3, mean_interarrival=1e-4, seed=9)
    audit = AuditConfig(log_dir=str(tmp_path), model="tiny")
    server, report = _serve(trace, audit=audit, num_shards=2)
    manifest = load_manifest(tmp_path)
    assert manifest["model"] == "tiny"
    assert manifest["num_shards"] == 2
    effective = manifest_config(manifest)
    assert effective == server.darknight  # the *effective* config, pinned
    assert effective.per_sample_normalization and not effective.fresh_coefficients
    for sid in (0, 1):
        loaded = AuditLog.load(tmp_path / f"shard{sid}.audit.jsonl")
        assert loaded.chain_root == report.audit_roots[sid]
        loaded.verify_chain()


def test_integrity_failure_commits_an_aborted_window():
    """A byzantine GPU's window must enter the log marked aborted, with
    integrity posture recorded and no output digests — evidence of the
    failure, not a forged success."""
    dk = DarKnightConfig(virtual_batch_size=2, integrity=True, seed=3)
    cluster = GpuCluster(
        PrimeField(),
        dk.n_gpus_required,
        fault_injectors={0: RandomTamper(PrimeField(), probability=1.0, seed=4)},
    )
    trace = synthetic_trace(4, (16,), n_tenants=2, seed=5)
    server = PrivateInferenceServer(
        _tiny_net(),
        ServingConfig(darknight=dk, audit=AuditConfig()),
        cluster=cluster,
    )
    report = server.serve_trace(trace)
    assert report.metrics.integrity_failures == 4
    log = server.audit.logs[0]
    assert log.n_windows > 0
    log.verify_chain()
    for entry in log.entries:
        meta = entry["meta"]
        assert meta["integrity"] is True
        assert meta["aborted"] is True
        assert meta["status"] in (STATUS_INTEGRITY_FAILED, "retried")
        assert all(leaf["output_digest"] is None for leaf in entry["leaves"])
    # The failed requests are still provable (as failures, not successes).
    proof = prove(log, 0)
    assert verify_proof(proof, log.chain_root)
    assert proof.leaf["output_digest"] is None


def test_shared_window_abort_leaves_a_retried_marker_then_terminal_leaves():
    """A transient tamper aborts a shared window: the log must show the
    retried marker first, then the isolating single-batch windows whose
    terminal leaves prove() prefers."""
    from repro.runtime.darknight import DarKnightBackend
    from repro.runtime.inference import PrivateInferenceEngine
    from repro.serving import InferenceWorkerPool, PendingRequest, ScheduledBatch
    from repro.audit import AuditTrail

    class _TransientTamper:
        def __init__(self, field, fail_calls=1):
            self._inner = RandomTamper(field, probability=1.0, seed=9)
            self._remaining = fail_calls

        def corrupt(self, tensor, device_id, op_name):
            if op_name == "dense_forward" and self._remaining > 0:
                self._remaining -= 1
                return self._inner.corrupt(tensor, device_id, op_name)
            return tensor

    net = _tiny_net()
    dk = DarKnightConfig(virtual_batch_size=2, integrity=True, seed=12)
    field = PrimeField()
    cluster = GpuCluster(
        field, dk.n_gpus_required, fault_injectors={0: _TransientTamper(field)}
    )
    engine = PrivateInferenceEngine(net, backend=DarKnightBackend(dk, cluster=cluster))
    trail = AuditTrail(AuditConfig(), darknight=dk, num_shards=1)
    pool = InferenceWorkerPool(engine, audit=trail)
    rng = np.random.default_rng(13)
    batches = [
        ScheduledBatch(
            batch_id=b,
            requests=[
                PendingRequest(
                    request_id=2 * b + i,
                    tenant=f"t{i}",
                    x=rng.normal(size=16),
                    arrival_time=0.0,
                    enqueue_time=0.0,
                )
                for i in range(2)
            ],
            flush_time=0.0,
            trigger="size",
            slots=2,
            shard_id=0,
        )
        for b in range(2)
    ]
    outcomes = pool.dispatch_window(batches)
    assert sum(o.ok for o in outcomes) >= 2  # honest batches recovered
    log = trail.logs[0]
    log.verify_chain()
    statuses = [e["meta"]["status"] for e in log.entries]
    assert statuses[0] == "retried" and log.entries[0]["meta"]["aborted"]
    assert len(log.entries[0]["leaves"]) == 4  # the whole shared window
    # Terminal leaves exist for every request, and prove() finds them.
    for rid in range(4):
        proof = prove(log, rid)
        assert proof.leaf["status"] != "retried"
        assert verify_proof(proof, log.chain_root)


def test_failover_splits_history_across_the_two_shard_chains():
    """A shard death mid-window: the dead shard's chain holds its
    completed prefix plus a retried marker for the rerouted tail; the
    survivor's chain holds the terminal leaves.  Everything verifies."""
    n = 32
    trace = synthetic_trace(n, (16,), n_tenants=6, mean_interarrival=2e-5, seed=5)
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=2)
    server = PrivateInferenceServer(
        _tiny_net(), ServingConfig(darknight=dk, queue_capacity=512, audit=AuditConfig())
    )
    victim = server.shards[0]
    victim.fail_after(1)
    report = server.serve_trace(trace)
    assert len(report.completed) == n
    assert report.failovers == 1
    assert server.audit.verify() == server.audit.windows_committed
    dead_log = server.audit.logs[0]
    dead_statuses = [e["meta"]["status"] for e in dead_log.entries]
    assert "retried" in dead_statuses  # the rerouted tail left a marker
    marker = dead_log.entries[dead_statuses.index("retried")]
    assert marker["meta"]["aborted"] and marker["meta"]["error"]
    # Every completed request's terminal leaf verifies on some chain.
    for outcome in report.completed:
        proved = False
        for sid, log in server.audit.logs.items():
            try:
                proof = prove(log, outcome.request_id)
            except Exception:
                continue
            if proof.leaf["status"] == "ok":
                assert verify_proof(proof, report.audit_roots[sid])
                proved = True
        assert proved, outcome.request_id


def test_snapshot_and_render_carry_audit_counters():
    trace = synthetic_trace(8, (16,), n_tenants=2, seed=1)
    server, report = _serve(trace, audit=AuditConfig())
    snap = server.metrics.snapshot()
    assert snap["audit_windows"] == server.audit.windows_committed
    assert snap["audit_leaves"] == 8
    assert snap["audit_bytes"] == server.audit.bytes_written
    json.dumps(snap, allow_nan=False)  # strict-JSON-safe
    rendered = report.render()
    assert "audit windows" in rendered
    assert "audit chain heads" in rendered


def test_trail_refuses_unknown_shards():
    from repro.audit import AuditTrail
    from repro.errors import AuditError

    trail = AuditTrail(AuditConfig(), darknight=DarKnightConfig(seed=0), num_shards=1)
    with pytest.raises(AuditError):
        trail.commit_window(5, [], [], status="ok")
