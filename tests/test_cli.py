"""Smoke tests for the ``python -m repro`` command-line entry points."""

import runpy

import pytest

from repro.cli import main, parse_seed_flag


def test_module_entry_point_prints_report(capsys):
    try:
        runpy.run_module("repro", run_name="__main__")
    except SystemExit as exc:
        assert exc.code in (0, None)
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "headline" in out


def test_serve_subcommand_smoke(capsys):
    """Tier-1 end-to-end: the serving subsystem behind the CLI."""
    rc = main(
        [
            "serve",
            "--model", "tiny",
            "--requests", "16",
            "--tenants", "2",
            "--virtual-batch", "4",
            "--seed", "0",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "served 16 requests from 2 tenants" in out
    assert "Serving metrics" in out
    assert "completed requests  | 16" in out
    assert "attestation handshakes" in out


def test_serve_subcommand_with_integrity(capsys):
    rc = main(
        ["serve", "--model", "tiny", "--requests", "8", "--integrity", "--seed", "1"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "integrity=on" in out
    assert "integrity failures  | 0" in out


def test_explicit_report_subcommand(capsys):
    assert main(["report"]) == 0
    assert "Table 1" in capsys.readouterr().out


@pytest.mark.parametrize(
    "argv,expected",
    [
        ([], 0),
        (["--seed", "7"], 7),
        (["--seed=9"], 9),
        (["--other", "--seed", "3", "x"], 3),
        (["--seed", "not-a-number"], 0),
    ],
)
def test_parse_seed_flag(argv, expected):
    assert parse_seed_flag(argv) == expected
