"""Smoke test for the ``python -m repro`` report entry point."""

import runpy


def test_module_entry_point_prints_report(capsys):
    try:
        runpy.run_module("repro", run_name="__main__")
    except SystemExit as exc:
        assert exc.code in (0, None)
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "headline" in out
