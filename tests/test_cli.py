"""Smoke tests for the ``python -m repro`` command-line entry points."""

import runpy

import pytest

from repro.cli import main, parse_seed_flag


def test_module_entry_point_prints_report(capsys):
    try:
        runpy.run_module("repro", run_name="__main__")
    except SystemExit as exc:
        assert exc.code in (0, None)
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "headline" in out


def test_serve_subcommand_smoke(capsys):
    """Tier-1 end-to-end: the serving subsystem behind the CLI."""
    rc = main(
        [
            "serve",
            "--model", "tiny",
            "--requests", "16",
            "--tenants", "2",
            "--virtual-batch", "4",
            "--seed", "0",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "served 16 requests from 2 tenants" in out
    assert "Serving metrics" in out
    assert "completed requests  | 16" in out
    assert "attestation handshakes" in out


def test_serve_subcommand_with_integrity(capsys):
    rc = main(
        ["serve", "--model", "tiny", "--requests", "8", "--integrity", "--seed", "1"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "integrity=on" in out
    assert "integrity failures  | 0" in out


def test_serve_subcommand_with_pipeline_depth(capsys):
    """--pipeline-depth threads to the staged executor and serves cleanly."""
    rc = main(
        [
            "serve",
            "--model", "tiny",
            "--requests", "16",
            "--tenants", "2",
            "--pipeline-depth", "3",
            "--seed", "0",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "pipeline depth 3" in out
    assert "completed requests  | 16" in out


def test_serve_rejects_pipeline_depth_below_one(capsys):
    rc = main(["serve", "--model", "tiny", "--pipeline-depth", "0"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "--pipeline-depth must be >= 1" in err


def test_pipelined_serve_completes_the_same_trace(capsys):
    """Same trace, same seed: depth 3 completes every request depth 1 does.

    (Bit-identity of the served logits across depths is asserted at the
    server level in test_serving_server.py; the CLI only prints counts.)
    """
    import re

    outputs = []
    for depth in ("1", "3"):
        rc = main(
            [
                "serve",
                "--model", "tiny",
                "--requests", "12",
                "--pipeline-depth", depth,
                "--seed", "4",
            ]
        )
        assert rc == 0
        outputs.append(capsys.readouterr().out)
    counts = [
        re.search(r"completed requests\s+\|\s+(\d+)", out).group(1) for out in outputs
    ]
    assert counts == ["12", "12"]


def test_serve_subcommand_with_shards(capsys):
    """--num-shards provisions parallel enclave shards and serves cleanly."""
    rc = main(
        [
            "serve",
            "--model", "tiny",
            "--requests", "16",
            "--tenants", "4",
            "--num-shards", "2",
            "--seed", "0",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "2 shard(s)" in out
    assert "completed requests  | 16" in out
    assert "2 enclave shard(s)" in out


def test_serve_rejects_num_shards_below_one(capsys):
    rc = main(["serve", "--model", "tiny", "--num-shards", "0"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "--num-shards must be >= 1" in err


def test_serve_rejects_gpu_budget_too_small_for_shards(capsys):
    """K=4, M=1 -> 5 GPUs/shard; 2 shards need 10, a budget of 8 must fail
    with a clear error instead of a deep traceback."""
    rc = main(
        [
            "serve",
            "--model", "tiny",
            "--num-shards", "2",
            "--virtual-batch", "4",
            "--gpus", "8",
        ]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "--gpus 8 cannot host 2 shard(s)" in err
    assert "10 total" in err


def test_serve_accepts_sufficient_gpu_budget(capsys):
    rc = main(
        [
            "serve",
            "--model", "tiny",
            "--requests", "8",
            "--num-shards", "2",
            "--virtual-batch", "4",
            "--gpus", "10",
            "--seed", "0",
        ]
    )
    assert rc == 0
    assert "completed requests  | 8" in capsys.readouterr().out


def test_serve_rejects_bad_virtual_batch_cleanly(capsys):
    rc = main(["serve", "--model", "tiny", "--virtual-batch", "0"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "virtual batch size" in err


def test_explicit_report_subcommand(capsys):
    assert main(["report"]) == 0
    assert "Table 1" in capsys.readouterr().out


@pytest.mark.parametrize(
    "argv,expected",
    [
        ([], 0),
        (["--seed", "7"], 7),
        (["--seed=9"], 9),
        (["--other", "--seed", "3", "x"], 3),
        (["--seed", "not-a-number"], 0),
    ],
)
def test_parse_seed_flag(argv, expected):
    assert parse_seed_flag(argv) == expected


def test_serve_subcommand_with_slo_classes(capsys):
    rc = main(
        [
            "serve", "--model", "tiny", "--requests", "24",
            "--slo-budget", "premium=5",
            "--slo-class", "tenant0=premium",
            "--stage-ranker", "deadline",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "SLO classes (deadline ranker)" in out
    assert "premium=5.0ms <- tenant0" in out
    assert "SLO attainment" in out


def test_serve_rejects_slo_class_without_budget(capsys):
    rc = main(["serve", "--model", "tiny", "--slo-class", "tenant0=premium"])
    assert rc == 2
    assert "class budget" in capsys.readouterr().err


def test_serve_rejects_malformed_slo_flags(capsys):
    rc = main(["serve", "--model", "tiny", "--slo-budget", "premium"])
    assert rc == 2
    assert "key=value" in capsys.readouterr().err
    rc = main(["serve", "--model", "tiny", "--slo-budget", "premium=fast"])
    assert rc == 2
    assert "milliseconds" in capsys.readouterr().err


def test_serve_rejects_deadline_ranker_without_slo(capsys):
    rc = main(["serve", "--model", "tiny", "--stage-ranker", "deadline"])
    assert rc == 2
    assert "--slo-budget" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the audit trail behind the CLI
# ----------------------------------------------------------------------
def _audited_serve(tmp_path, capsys, n=12):
    rc = main(
        [
            "serve",
            "--model", "tiny",
            "--requests", str(n),
            "--tenants", "3",
            "--virtual-batch", "4",
            "--num-shards", "2",
            "--seed", "0",
            "--audit-log", str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "audit chain heads" in out
    assert f"committed to {tmp_path}" in out
    return out


def test_serve_audit_then_check_chain(tmp_path, capsys):
    _audited_serve(tmp_path, capsys)
    rc = main(["audit", "check-chain", "--log-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "chain OK" in out
    assert "shard 0" in out and "shard 1" in out


def test_prove_then_verify_roundtrip_and_tamper(tmp_path, capsys):
    _audited_serve(tmp_path, capsys)
    proof_path = tmp_path / "proof.json"
    rc = main(
        [
            "audit", "prove",
            "--log-dir", str(tmp_path),
            "--request-id", "5",
            "--out", str(proof_path),
        ]
    )
    assert rc == 0
    capsys.readouterr()
    assert proof_path.exists()

    rc = main(["audit", "verify", "--proof", str(proof_path)])
    assert rc == 0
    assert "PROOF OK" in capsys.readouterr().out

    # Verifying against the wrong root must fail with a nonzero exit.
    import json as _json

    blob = _json.loads(proof_path.read_text())
    blob["shard_root"] = "0" * 64
    bad_path = tmp_path / "bad.json"
    bad_path.write_text(_json.dumps(blob))
    rc = main(["audit", "verify", "--proof", str(bad_path)])
    assert rc == 1
    assert "PROOF FAILED" in capsys.readouterr().out


def test_audit_replay_matches_committed_digests(tmp_path, capsys):
    _audited_serve(tmp_path, capsys)
    rc = main(
        ["audit", "replay", "--log-dir", str(tmp_path), "--request-id", "3"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "MATCH" in out


def test_tampered_log_fails_check_chain_and_recovers(tmp_path, capsys):
    _audited_serve(tmp_path, capsys)
    log_path = next(tmp_path.glob("shard*.audit.jsonl"))
    lines = log_path.read_text().splitlines()
    # Truncate the final line mid-record: strict check fails...
    log_path.write_text("\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]]) + "\n")
    rc = main(["audit", "check-chain", "--log-dir", str(tmp_path)])
    assert rc == 2
    assert capsys.readouterr().err
    # ...and --recover keeps the longest valid prefix, reporting the drop.
    rc = main(["audit", "check-chain", "--log-dir", str(tmp_path), "--recover"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "dropped" in out


def test_audit_unknown_request_errors_cleanly(tmp_path, capsys):
    _audited_serve(tmp_path, capsys)
    rc = main(
        ["audit", "prove", "--log-dir", str(tmp_path), "--request-id", "999"]
    )
    assert rc == 2
    assert "appears in no shard" in capsys.readouterr().err


def test_audit_empty_dir_errors_cleanly(tmp_path, capsys):
    rc = main(["audit", "check-chain", "--log-dir", str(tmp_path)])
    assert rc == 2
    assert "no shard" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the unified config surface (--config) and elastic serving (--autoscale)
# ----------------------------------------------------------------------
def test_serve_with_config_preset(capsys):
    rc = main(["serve", "--config", "throughput", "--requests", "16", "--seed", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    # The preset's K=8 took effect without any per-field flag.
    assert "coalesced K=8" in out
    assert "completed requests  | 16" in out


def test_serve_with_config_file_round_trips(tmp_path, capsys):
    import json

    from repro.serving import ServingConfig

    cfg = ServingConfig.preset("latency")
    path = tmp_path / "serving.json"
    path.write_text(json.dumps(cfg.to_dict()))
    rc = main(["serve", "--config", str(path), "--requests", "16", "--seed", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "adaptive K=" in out  # the file's adaptive section took effect
    assert "completed requests  | 16" in out


def test_serve_config_rejects_unknown_preset_and_bad_file(tmp_path, capsys):
    rc = main(["serve", "--config", "warp-speed", "--requests", "4"])
    assert rc == 2
    assert "neither a preset" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text('{"no_such_key": 1}')
    rc = main(["serve", "--config", str(bad), "--requests", "4"])
    assert rc == 2
    assert "unknown serving config keys" in capsys.readouterr().err


def test_serve_superseded_flags_warn_but_still_override(capsys):
    with pytest.warns(DeprecationWarning, match="--virtual-batch"):
        rc = main(
            [
                "serve",
                "--config", "throughput",
                "--virtual-batch", "2",
                "--requests", "8",
                "--seed", "0",
            ]
        )
    assert rc == 0
    assert "coalesced K=2" in capsys.readouterr().out  # flag beat the preset


def test_serve_workers_flag_is_deprecated(capsys):
    with pytest.warns(DeprecationWarning, match="--workers"):
        rc = main(["serve", "--requests", "8", "--workers", "3", "--seed", "0"])
    assert rc == 0


def test_serve_autoscale_smoke(capsys):
    rc = main(
        [
            "serve",
            "--requests", "48",
            "--rate", "20000",
            "--autoscale",
            "--max-shards", "3",
            "--seed", "0",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "elastic 1-3 shard(s)" in out
    assert "completed requests  | 48" in out
    assert "autoscale:" in out
    assert "shard-seconds" in out


def test_serve_autoscale_knobs_require_autoscale(capsys):
    rc = main(["serve", "--requests", "4", "--min-shards", "2"])
    assert rc == 2
    assert "--autoscale" in capsys.readouterr().err
