"""Tests for staleness-aware asynchronous SGD (the pipelined-training mode)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import Dense, PlainBackend, Sequential, SoftmaxCrossEntropy
from repro.runtime import StalenessAwareSGD


def _net(rng):
    return Sequential([Dense(6, 3, rng=rng)], input_shape=(6,))


def _one_backward(net, x, y):
    loss = SoftmaxCrossEntropy()
    logits = net.forward(x, PlainBackend(), training=True)
    value = loss.forward(logits, y)
    net.backward(loss.backward(), PlainBackend())
    return value


def test_depth_zero_matches_plain_sgd(nprng):
    x = nprng.normal(size=(8, 6))
    y = nprng.integers(0, 3, 8)

    rng_a = np.random.default_rng(1)
    plain_net = _net(rng_a)
    from repro.nn import SGD

    plain_opt = SGD(plain_net, lr=0.1)
    rng_b = np.random.default_rng(1)
    async_net = _net(rng_b)
    async_opt = StalenessAwareSGD(async_net, lr=0.1, pipeline_depth=0)

    for _ in range(5):
        _one_backward(plain_net, x, y)
        plain_opt.step()
        plain_opt.zero_grad()
        _one_backward(async_net, x, y)
        async_opt.step()
    for a, b in zip(plain_net.state_dict().values(), async_net.state_dict().values()):
        assert np.allclose(a, b)


def test_updates_are_delayed_by_pipeline_depth(nprng):
    net = _net(nprng)
    opt = StalenessAwareSGD(net, lr=0.1, pipeline_depth=2)
    x = nprng.normal(size=(4, 6))
    y = nprng.integers(0, 3, 4)
    before = {k: v.copy() for k, v in net.state_dict().items()}
    # Two steps fill the pipeline without applying anything.
    for _ in range(2):
        _one_backward(net, x, y)
        opt.step()
    assert opt.in_flight == 2
    for k, v in net.state_dict().items():
        assert np.array_equal(v, before[k]), "update applied too early"
    # Third step pops the first update.
    _one_backward(net, x, y)
    opt.step()
    assert opt.in_flight == 2
    changed = any(
        not np.array_equal(v, before[k]) for k, v in net.state_dict().items()
    )
    assert changed


def test_staleness_scaling_recorded(nprng):
    net = _net(nprng)
    opt = StalenessAwareSGD(net, lr=0.1, pipeline_depth=2)
    x = nprng.normal(size=(4, 6))
    y = nprng.integers(0, 3, 4)
    for _ in range(6):
        _one_backward(net, x, y)
        opt.step()
    opt.drain()
    assert opt.in_flight == 0
    assert all(s >= 0 for s in opt.staleness_applied)
    assert max(opt.staleness_applied) >= 1  # pipelining produced stale updates


def test_stale_training_still_converges(nprng):
    """The Zhang-et-al. scaling keeps delayed-gradient training stable."""
    net = _net(np.random.default_rng(3))
    opt = StalenessAwareSGD(net, lr=0.2, pipeline_depth=2, momentum=0.5)
    x = nprng.normal(size=(16, 6))
    y = nprng.integers(0, 3, 16)
    losses = []
    for _ in range(40):
        losses.append(_one_backward(net, x, y))
        opt.step()
    opt.drain()
    assert losses[-1] < 0.5 * losses[0]


def test_validation(nprng):
    net = _net(nprng)
    with pytest.raises(ConfigurationError):
        StalenessAwareSGD(net, lr=0)
    with pytest.raises(ConfigurationError):
        StalenessAwareSGD(net, pipeline_depth=-1)
    with pytest.raises(ConfigurationError):
        StalenessAwareSGD(net, momentum=1.0)
    opt = StalenessAwareSGD(net)
    with pytest.raises(ConfigurationError):
        opt.step()  # no gradients recorded
