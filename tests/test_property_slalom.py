"""Property tests for Slalom's blinding and Freivalds verification."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.enclave import Enclave
from repro.fieldmath import FieldRng, PrimeField, field_matmul
from repro.slalom import BlindingStore, freivalds_check


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
    seed=st.integers(0, 10_000),
)
def test_blind_unblind_identity_for_any_shape(shape, seed):
    """x -> blind -> unblind(f(blind)) recovers f(x) exactly, any shape."""
    enclave = Enclave(seed=seed)
    field = enclave.field
    store = BlindingStore(enclave)
    rng = FieldRng(field, seed)
    w = rng.uniform((shape[1], 3))

    def linear_op(v):
        return field_matmul(field, v, w)

    store.precompute("layer", 1, shape, linear_op, macs_per_op=1)
    x = rng.uniform(shape)
    pair = store.next_pair("layer")
    blinded = store.blind(x, pair)
    recovered = store.unblind(linear_op(blinded), pair)
    assert np.array_equal(recovered, linear_op(x))


@settings(max_examples=20, deadline=None)
@given(
    f=st.integers(1, 6),
    d=st.integers(1, 6),
    p=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_freivalds_completeness(f, d, p, seed):
    """Honest products always verify (no false positives on correct work)."""
    field = PrimeField()
    rng = FieldRng(field, seed)
    w = rng.uniform((f, d))
    x = rng.uniform((d, p))
    y = field_matmul(field, w, x)
    assert freivalds_check(field, w, x, y, rng, trials=2)


@settings(max_examples=20, deadline=None)
@given(
    f=st.integers(2, 6),
    d=st.integers(2, 6),
    p=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_freivalds_soundness_on_random_forgeries(f, d, p, seed):
    """A uniformly random 'result' is rejected with overwhelming probability."""
    field = PrimeField()
    rng = FieldRng(field, seed)
    w = rng.uniform((f, d))
    x = rng.uniform((d, p))
    forged = rng.uniform((f, p))
    honest = field_matmul(field, w, x)
    if np.array_equal(forged, honest):  # astronomically unlikely
        return
    assert not freivalds_check(field, w, x, forged, rng, trials=3)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), n_pairs=st.integers(1, 4))
def test_blinding_pairs_never_repeat(seed, n_pairs):
    """One-time pads are one-time: every pair in a pool is distinct."""
    enclave = Enclave(seed=seed)
    store = BlindingStore(enclave)
    store.precompute("l", n_pairs, (8,), lambda r: r, macs_per_op=1)
    pairs = [store.next_pair("l") for _ in range(n_pairs)]
    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            assert not np.array_equal(pairs[i].r, pairs[j].r)
