"""Direct tests for the analytical timeline helpers."""

import pytest

from repro.perf import (
    PhaseBreakdown,
    build_timeline,
    non_pipelined_linear_time,
    pipelined_linear_time,
)


@pytest.fixture()
def breakdown():
    return PhaseBreakdown(
        linear=2.0, nonlinear=5.0, encode_decode=1.0, communication=3.0
    )


def test_streams_mapping(breakdown):
    tl = build_timeline(breakdown)
    assert tl.tee_stream == 6.0  # nonlinear + encode/decode
    assert tl.gpu_stream == 2.0
    assert tl.link_stream == 3.0


def test_non_pipelined_is_total(breakdown):
    tl = build_timeline(breakdown)
    assert tl.non_pipelined == pytest.approx(breakdown.total) == 11.0


def test_pipelined_is_slowest_stream(breakdown):
    tl = build_timeline(breakdown)
    assert tl.pipelined == 6.0
    assert tl.pipeline_gain == pytest.approx(11.0 / 6.0)


def test_pipeline_gain_handles_zero():
    tl = build_timeline(PhaseBreakdown(linear=0, nonlinear=0))
    assert tl.pipeline_gain == float("inf")


def test_linear_time_definitions(breakdown):
    # The paper's Section 7.1 category definitions.
    assert non_pipelined_linear_time(breakdown) == 5.0  # linear + comm
    assert pipelined_linear_time(breakdown) == 2.0  # pure GPU compute


def test_gpu_bound_workload_pipelines_to_gpu_stream():
    gpu_bound = PhaseBreakdown(
        linear=10.0, nonlinear=1.0, encode_decode=0.5, communication=2.0
    )
    tl = build_timeline(gpu_bound)
    assert tl.pipelined == 10.0
