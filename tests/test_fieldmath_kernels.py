"""Property tests: the limb/Barrett kernels are bit-identical to the oracle.

The limb backend's exactness argument (13-bit limb products accumulated in
float64 below 2**53) is proved in :mod:`repro.fieldmath.kernels`; these
tests attack it empirically — randomized shapes and values, all-zero and
all-``p-1`` adversarial operands, contractions straddling every dispatch
boundary (2-GEMM -> Karatsuba -> generic fallback) — and pin the backend
registry / config / CLI plumbing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FieldError
from repro.fieldmath import (
    BarrettReducer,
    FieldRng,
    PrimeField,
    default_backend_name,
    field_matmul,
    get_backend,
    set_default_backend,
    use_backend,
)
from repro.fieldmath.kernels import (
    BACKENDS,
    GenericBackend,
    LimbBackend,
    karatsuba_limit,
    two_gemm_limit,
)

FIELD = PrimeField()
GENERIC = GenericBackend()
LIMB = LimbBackend()


def _bigint_matmul(a, b, p):
    """Exact reference via Python big ints."""
    return np.mod(a.astype(object) @ b.astype(object), p).astype(np.int64)


# ----------------------------------------------------------------------
# limb GEMM == generic oracle == bigint reference
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 7),
    k=st.integers(1, 40),
    cols=st.integers(1, 7),
    seed=st.integers(0, 10_000),
)
def test_limb_matmul_matches_oracle_random(rows, k, cols, seed):
    rng = FieldRng(FIELD, seed)
    a, b = rng.uniform((rows, k)), rng.uniform((k, cols))
    expected = GENERIC.matmul(FIELD, a, b, 4096)
    assert np.array_equal(expected, _bigint_matmul(a, b, FIELD.p))
    assert np.array_equal(LIMB.matmul(FIELD, a, b, 4096), expected)


@pytest.mark.parametrize("value", [0, 1, PrimeField().p - 1])
@pytest.mark.parametrize("k", [1, 7, 4096])
def test_limb_matmul_extreme_values(value, k):
    a = np.full((3, k), value, dtype=np.int64)
    b = np.full((k, 2), value, dtype=np.int64)
    assert np.array_equal(
        LIMB.matmul(FIELD, a, b, 4096), GENERIC.matmul(FIELD, a, b, 4096)
    )


def test_limb_matmul_max_k_accumulation_edge():
    """Worst case at the 2-GEMM bound: every operand entry is ``p - 1``."""
    for k in (two_gemm_limit(FIELD.p) - 1, two_gemm_limit(FIELD.p)):
        a = np.full((1, k), FIELD.p - 1, dtype=np.int64)
        b = np.full((k, 1), FIELD.p - 1, dtype=np.int64)
        expected = pow(FIELD.p - 1, 2, FIELD.p) * k % FIELD.p
        assert LIMB.matmul(FIELD, a, b, 4096)[0, 0] == expected


def test_limb_matmul_karatsuba_branch_past_two_gemm_bound():
    """Contractions just past the 2-GEMM bound switch to the 3-GEMM path."""
    k = two_gemm_limit(FIELD.p) + 1
    a = np.full((1, k), FIELD.p - 1, dtype=np.int64)
    b = np.full((k, 1), FIELD.p - 1, dtype=np.int64)
    expected = pow(FIELD.p - 1, 2, FIELD.p) * k % FIELD.p
    assert LIMB.matmul(FIELD, a, b, 4096)[0, 0] == expected


@settings(max_examples=15, deadline=None)
@given(k=st.integers(1, 60), seed=st.integers(0, 1000))
def test_forced_dispatch_branches_agree(k, seed):
    """Tiny caps force each branch (2-GEMM / Karatsuba / generic) on the
    same operands; all three must agree bit-for-bit."""
    rng = FieldRng(FIELD, seed)
    a, b = rng.uniform((4, k)), rng.uniform((k, 3))
    expected = GENERIC.matmul(FIELD, a, b, 4096)
    forced_kara = LimbBackend(two_gemm_cap=0)
    forced_fallback = LimbBackend(two_gemm_cap=0, karatsuba_cap=0)
    assert np.array_equal(LIMB.matmul(FIELD, a, b, 4096), expected)
    assert np.array_equal(forced_kara.matmul(FIELD, a, b, 4096), expected)
    assert np.array_equal(forced_fallback.matmul(FIELD, a, b, 4096), expected)


def test_limb_matmul_falls_back_past_exactness_bound():
    """Regression: contractions beyond the Karatsuba bound (modeled with a
    tiny cap) must take the generic path and stay exact, not overflow."""
    capped = LimbBackend(two_gemm_cap=8, karatsuba_cap=16)
    rng = FieldRng(FIELD, 7)
    a, b = rng.uniform((3, 40)), rng.uniform((40, 3))
    assert np.array_equal(
        capped.matmul(FIELD, a, b, 4096), _bigint_matmul(a, b, FIELD.p)
    )


def test_limb_backend_rejects_nothing_it_cannot_handle():
    """p >= 2**26 (limbs would not fit 13 bits) silently uses the oracle."""
    big = PrimeField(67108879)  # smallest prime >= 2**26
    rng = FieldRng(big, 3)
    a, b = rng.uniform((4, 9)), rng.uniform((9, 4))
    assert np.array_equal(
        LIMB.matmul(big, a, b, 4096), _bigint_matmul(a, b, big.p)
    )


def test_limb_matmul_one_dimensional_operands():
    rng = FieldRng(FIELD, 11)
    a, b = rng.uniform(17), rng.uniform((17, 3))
    assert np.array_equal(
        LIMB.matmul(FIELD, a, b, 4096), GENERIC.matmul(FIELD, a, b, 4096)
    )
    bv = rng.uniform(17)
    am = rng.uniform((3, 17))
    assert np.array_equal(
        LIMB.matmul(FIELD, am, bv, 4096), GENERIC.matmul(FIELD, am, bv, 4096)
    )


# ----------------------------------------------------------------------
# Barrett reducer
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_barrett_int64_matches_mod(seed):
    rng = np.random.default_rng(seed)
    red = BarrettReducer(FIELD.p)
    x = rng.integers(0, 1 << 50, size=257)
    assert np.array_equal(red.reduce_int64(x), np.mod(x, FIELD.p))


def test_barrett_int64_boundary_values():
    p = FIELD.p
    red = BarrettReducer(p)
    edges = np.array(
        [0, 1, p - 1, p, p + 1, 2 * p - 1, 2 * p, 3 * p - 1, (1 << 50) - 1],
        dtype=np.int64,
    )
    assert np.array_equal(red.reduce_int64(edges), np.mod(edges, p))


def test_barrett_f64_boundary_values():
    p = FIELD.p
    red = BarrettReducer(p)
    ks = [0, 1, 2, 1000, (2**52) // p]
    ds = [0, 1, p - 1]
    xs = np.array([k * p + d for k in ks for d in ds], dtype=np.float64)
    expected = np.array([d for _ in ks for d in ds], dtype=np.float64)
    assert np.array_equal(red.reduce_f64(xs.copy()), expected)
    lazy = red.reduce_f64_lazy(xs.copy())
    assert np.all(lazy >= 0) and np.all(lazy < 2 * p)
    assert np.array_equal(np.mod(lazy, p), expected)


def test_barrett_int64_refuses_wide_moduli():
    wide = BarrettReducer((1 << 31) - 1)  # Mersenne prime, 31 bits
    with pytest.raises(FieldError):
        wide.reduce_int64(np.arange(4))


def test_dispatch_limits_are_sane():
    assert two_gemm_limit(FIELD.p) == 32770
    assert karatsuba_limit(FIELD.p) > 30_000_000


# ----------------------------------------------------------------------
# backend registry / selection plumbing
# ----------------------------------------------------------------------


def test_backend_registry_and_default_switch():
    assert set(BACKENDS) == {"generic", "limb"}
    assert default_backend_name() == "limb"
    previous = set_default_backend("generic")
    try:
        assert previous == "limb"
        assert default_backend_name() == "generic"
    finally:
        set_default_backend(previous)
    with pytest.raises(FieldError):
        get_backend("nope")
    with pytest.raises(FieldError):
        set_default_backend("nope")


def test_use_backend_scopes_and_restores():
    rng = FieldRng(FIELD, 5)
    a, b = rng.uniform((6, 20)), rng.uniform((20, 6))
    results = {}
    for name in ("generic", "limb"):
        with use_backend(name):
            assert default_backend_name() == name
            results[name] = field_matmul(FIELD, a, b)
    assert default_backend_name() == "limb"
    assert np.array_equal(results["generic"], results["limb"])


def test_field_matmul_backend_argument_overrides_default():
    rng = FieldRng(FIELD, 9)
    a, b = rng.uniform((5, 13)), rng.uniform((13, 5))
    assert np.array_equal(
        field_matmul(FIELD, a, b, backend="generic"),
        field_matmul(FIELD, a, b, backend="limb"),
    )
    with pytest.raises(FieldError):
        field_matmul(FIELD, a, b, backend="nope")


def test_field_matmul_still_validates_before_dispatch():
    rng = FieldRng(FIELD, 1)
    a, b = rng.uniform((3, 4)), rng.uniform((4, 3))
    with pytest.raises(FieldError):
        field_matmul(FIELD, a, rng.uniform((5, 3)))
    with pytest.raises(FieldError):
        field_matmul(FIELD, a, b, chunk=0)


def test_config_validates_field_backend():
    from repro.runtime.config import DarKnightConfig

    assert DarKnightConfig().field_backend == "limb"
    assert DarKnightConfig(field_backend="generic").field_backend == "generic"
    with pytest.raises(ConfigurationError):
        DarKnightConfig(field_backend="nope")


def test_backend_construction_applies_config_choice():
    from repro.runtime.config import DarKnightConfig
    from repro.runtime.darknight import DarKnightBackend

    try:
        DarKnightBackend(DarKnightConfig(field_backend="generic"))
        assert default_backend_name() == "generic"
    finally:
        set_default_backend("limb")


# ----------------------------------------------------------------------
# division-free PrimeField ops stay exact
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_prime_field_ops_match_mod_semantics(seed):
    rng = np.random.default_rng(seed)
    p = FIELD.p
    a = rng.integers(0, p, size=200)
    b = rng.integers(0, p, size=200)
    assert np.array_equal(FIELD.add(a, b), (a + b) % p)
    assert np.array_equal(FIELD.sub(a, b), (a - b) % p)
    assert np.array_equal(FIELD.neg(a), (-a) % p)
    assert np.array_equal(FIELD.mul(a, b), a * b % p)


def test_prime_field_ops_accept_non_canonical_inputs():
    """The conditional-correction fast paths must still reduce arbitrary
    int64 inputs exactly (falling back to the generic modulus)."""
    p = FIELD.p
    a = np.array([-1, -p, 2 * p + 3, p, 0, p - 1], dtype=np.int64)
    b = np.array([5, -3 * p - 1, p + 2, -p + 1, p - 1, p - 1], dtype=np.int64)
    assert np.array_equal(FIELD.add(a, b), (a + b) % p)
    assert np.array_equal(FIELD.sub(a, b), (a - b) % p)
    assert np.array_equal(FIELD.neg(a), (-a) % p)


def test_prime_field_mul_f64_band_is_bit_identical():
    """Sizes inside the float64-Barrett band agree with np.mod exactly."""
    rng = np.random.default_rng(0)
    p = FIELD.p
    for size in (1024, 4096, 1 << 17):
        a = rng.integers(0, p, size=size)
        b = rng.integers(0, p, size=size)
        assert np.array_equal(FIELD.mul(a, b), a * b % p)
    worst = np.full(2048, p - 1, dtype=np.int64)
    assert np.array_equal(FIELD.mul(worst, worst), worst * worst % p)
