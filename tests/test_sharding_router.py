"""Tests for consistent-hashing tenant routing with load-aware pinning."""

import pytest

from repro.errors import ConfigurationError, ShardError
from repro.sharding import ShardRouter


def test_pins_are_sticky_and_deterministic():
    a = ShardRouter(4)
    b = ShardRouter(4)
    tenants = [f"tenant{i}" for i in range(20)]
    first = {t: a.shard_for(t) for t in tenants}
    # Same tenant, same router -> same shard on every later lookup.
    for t in tenants:
        assert a.shard_for(t) == first[t]
    # A fresh router with the same shape reproduces the placement exactly
    # (keyed BLAKE2b hashing, not Python's randomized hash).
    assert {t: b.shard_for(t) for t in tenants} == first


def test_single_shard_routes_everything_to_zero():
    router = ShardRouter(1)
    assert {router.shard_for(f"t{i}") for i in range(10)} == {0}
    assert router.loads() == [10]


def test_load_aware_rebalancing_bounds_skew():
    router = ShardRouter(4, rebalance_margin=2)
    for i in range(40):
        router.shard_for(f"tenant{i}")
    loads = router.loads()
    assert sum(loads) == 40
    # The margin caps how far the hash distribution can wander from the
    # lightest shard at each placement.
    assert max(loads) - min(loads) <= router.rebalance_margin
    assert router.rebalanced > 0


def test_ring_candidate_ignores_pin_state():
    router = ShardRouter(3)
    candidate = router.ring_candidate("alice")
    assert candidate in (0, 1, 2)
    # ring_candidate is pure placement; it never pins.
    assert router.pins() == {}


def test_fail_shard_remaps_displaced_tenants_to_survivors():
    router = ShardRouter(3, rebalance_margin=1)
    tenants = [f"tenant{i}" for i in range(12)]
    before = {t: router.shard_for(t) for t in tenants}
    victims = [t for t, s in before.items() if s == 1]
    assert victims, "expected at least one tenant on shard 1"
    remap = router.fail_shard(1)
    assert sorted(remap) == sorted(victims)
    assert all(shard in (0, 2) for shard in remap.values())
    # Tenants on surviving shards never move.
    for t, s in before.items():
        if s != 1:
            assert router.shard_for(t) == s
    # The dead shard is out of every future placement.
    assert router.is_failed(1)
    assert all(router.shard_for(f"new{i}") in (0, 2) for i in range(8))
    # Failing a shard twice is a no-op.
    assert router.fail_shard(1) == {}


def test_all_shards_failed_raises():
    router = ShardRouter(2)
    router.shard_for("alice")
    router.fail_shard(0)
    router.fail_shard(1)
    with pytest.raises(ShardError):
        router.shard_for("alice")


def test_invalid_parameters_are_rejected():
    with pytest.raises(ConfigurationError):
        ShardRouter(0)
    with pytest.raises(ConfigurationError):
        ShardRouter(2, replicas=0)
    with pytest.raises(ConfigurationError):
        ShardRouter(2, rebalance_margin=0)
    with pytest.raises(ConfigurationError):
        ShardRouter(2).fail_shard(5)


def test_hash_ring_weights_skew_pins_toward_heavy_shards():
    """A weight-2 shard should receive ~2x the tenant pins of weight-1
    shards: twice the virtual nodes, and load compared per unit weight."""
    router = ShardRouter(3, weights=[2.0, 1.0, 1.0], rebalance_margin=2)
    for i in range(120):
        router.shard_for(f"tenant{i}")
    heavy, light_a, light_b = router.loads()
    assert heavy + light_a + light_b == 120
    # Expected split 60/30/30; allow hash + margin slack.
    for light in (light_a, light_b):
        assert 1.5 <= heavy / light <= 2.7, router.loads()
    # Weight-normalized loads stay within the rebalance margin.
    norms = [load / w for load, w in zip(router.loads(), router.weights)]
    assert max(norms) - min(norms) <= router.rebalance_margin


def test_default_weights_reproduce_the_unweighted_ring():
    plain = ShardRouter(4)
    weighted = ShardRouter(4, weights=[1.0, 1.0, 1.0, 1.0])
    tenants = [f"tenant{i}" for i in range(30)]
    assert {t: plain.shard_for(t) for t in tenants} == {
        t: weighted.shard_for(t) for t in tenants
    }


def test_invalid_weights_are_rejected():
    with pytest.raises(ConfigurationError):
        ShardRouter(2, weights=[1.0])  # wrong arity
    with pytest.raises(ConfigurationError):
        ShardRouter(2, weights=[1.0, 0.0])  # non-positive
