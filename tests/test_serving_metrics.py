"""Tests for the serving metrics collector."""

import math

from repro.serving import ServerMetrics
from repro.serving.requests import (
    STATUS_INTEGRITY_FAILED,
    STATUS_OK,
    RequestOutcome,
    ScheduledBatch,
)


def _ok(request_id, tenant, arrival, completion):
    return RequestOutcome(
        request_id=request_id,
        tenant=tenant,
        status=STATUS_OK,
        arrival_time=arrival,
        dispatch_time=arrival,
        completion_time=completion,
        prediction=0,
    )


def test_latency_percentiles_and_throughput():
    metrics = ServerMetrics()
    for i in range(100):
        metrics.record_outcome(_ok(i, "t0", arrival=float(i), completion=i + 0.010))
    assert metrics.completed == 100
    assert math.isclose(metrics.latency_percentile(50), 0.010)
    assert math.isclose(metrics.latency_percentile(99), 0.010)
    assert math.isclose(metrics.mean_latency, 0.010)
    # 100 completions over the 99.01s arrival..last-completion span.
    assert math.isclose(metrics.throughput, 100 / 99.010, rel_tol=1e-9)


def test_batch_fill_and_trigger_accounting():
    metrics = ServerMetrics()
    metrics.record_batch(ScheduledBatch(batch_id=0, requests=[1, 2, 3, 4], slots=4))
    metrics.record_batch(
        ScheduledBatch(batch_id=1, requests=[5], trigger="deadline", slots=4)
    )
    assert metrics.batches == 2
    assert math.isclose(metrics.batch_fill_ratio, (1.0 + 0.25) / 2)
    assert metrics.flush_triggers() == {"size": 1, "deadline": 1}


def test_failures_and_shed_are_counted_not_completed():
    metrics = ServerMetrics()
    metrics.record_outcome(_ok(0, "a", 0.0, 0.01))
    metrics.record_outcome(
        RequestOutcome(
            request_id=1,
            tenant="b",
            status=STATUS_INTEGRITY_FAILED,
            arrival_time=0.0,
        )
    )
    metrics.record_shed("b")
    snap = metrics.snapshot()
    assert snap["completed"] == 1
    assert snap["integrity_failures"] == 1
    assert snap["shed"] == 1
    assert metrics.completed_by_tenant() == {"a": 1}
    assert metrics.shed_by_tenant() == {"b": 1}


def test_render_is_a_table_with_headline_metrics():
    metrics = ServerMetrics()
    metrics.record_outcome(_ok(0, "a", 0.0, 0.02))
    text = metrics.render()
    assert "latency p99" in text
    assert "throughput" in text
    assert "batch fill ratio" in text


def test_empty_metrics_do_not_crash():
    metrics = ServerMetrics()
    assert metrics.throughput == 0.0
    assert math.isnan(metrics.latency_percentile(50))
    assert metrics.batch_fill_ratio == 0.0


def test_degenerate_span_reports_zero_not_infinity():
    """Regression: one instantaneous completion used to yield inf req/s."""
    metrics = ServerMetrics()
    metrics.record_outcome(_ok(0, "a", arrival=1.0, completion=1.0))
    assert metrics.throughput == 0.0
    assert math.isfinite(metrics.snapshot()["throughput_rps"])


def test_shed_and_failed_arrivals_do_not_stretch_the_span():
    """Regression: a shed (or failed) arrival long before the first
    completed request used to move the span start, deflating throughput
    on mixed traces."""
    from repro.serving.requests import STATUS_SHARD_FAILED

    clean = ServerMetrics()
    mixed = ServerMetrics()
    # Noise at t=0 that produced no served response...
    mixed.record_shed("noisy")
    mixed.record_outcome(
        RequestOutcome(
            request_id=99,
            tenant="noisy",
            status=STATUS_INTEGRITY_FAILED,
            arrival_time=0.0,
        )
    )
    mixed.record_outcome(
        RequestOutcome(
            request_id=98,
            tenant="noisy",
            status=STATUS_SHARD_FAILED,
            arrival_time=0.0,
        )
    )
    # ...then identical completed traffic starting at t=100.
    for m in (clean, mixed):
        for i in range(10):
            m.record_outcome(_ok(i, "a", arrival=100.0 + i, completion=100.5 + i))
    assert mixed.throughput == clean.throughput
    assert math.isclose(clean.throughput, 10 / 9.5)


def test_snapshot_is_strict_json_everywhere():
    """No Infinity/NaN may reach benchmark JSON artifacts, and an empty
    snapshot still renders."""
    import json

    def _reject(_):
        raise AssertionError("non-finite constant leaked into snapshot JSON")

    empty = ServerMetrics()
    json.loads(json.dumps(empty.snapshot()), parse_constant=_reject)
    assert empty.snapshot()["latency_p99"] is None
    assert "n/a" in empty.render()

    busy = ServerMetrics()
    busy.record_outcome(_ok(0, "a", arrival=2.0, completion=2.0))  # zero span
    json.loads(json.dumps(busy.snapshot()), parse_constant=_reject)


def test_quota_sheds_are_counted_separately():
    import pytest

    from repro.serving.metrics import SHED_EVICTED, SHED_QUOTA
    from repro.serving.slo import SloPolicy

    metrics = ServerMetrics(slo=SloPolicy())
    metrics.record_outcome(_ok(0, "a", 0.0, 0.01))
    metrics.record_shed("b0", kind=SHED_QUOTA)
    metrics.record_shed("b1", kind=SHED_EVICTED)
    metrics.record_shed("b2")
    assert metrics.shed == 3
    assert metrics.shed_quota == 1
    snap = metrics.snapshot()
    assert snap["shed_quota"] == 1
    assert "shed over quota" in metrics.render()
    with pytest.raises(ValueError):
        metrics.record_shed("b0", kind="bogus")
