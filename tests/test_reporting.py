"""Tests for ASCII table/series rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting import render_series, render_table


def test_render_table_basic():
    out = render_table(
        ["Model", "Speedup"], [["VGG16", 8.01], ["ResNet50", 4.2]], title="Fig 5"
    )
    lines = out.splitlines()
    assert lines[0] == "Fig 5"
    assert "Model" in lines[1] and "Speedup" in lines[1]
    assert "-+-" in lines[2]
    assert "VGG16" in lines[3]
    assert "8.01" in lines[3]


def test_render_table_validation():
    with pytest.raises(ConfigurationError):
        render_table(["a"], [])
    with pytest.raises(ConfigurationError):
        render_table(["a", "b"], [["only-one"]])


def test_render_table_number_formatting():
    out = render_table(["x"], [[0.000123], [12345.6], [1.5], [0]])
    assert "1.230e-04" in out
    assert "1.235e+04" in out
    assert "1.5" in out


def test_render_series():
    out = render_series("aggregation speedup", [2, 4], [1.9, 3.7], unit="x")
    assert "aggregation speedup" in out
    assert "2" in out and "3.7 x" in out
    with pytest.raises(ConfigurationError):
        render_series("s", [1], [1.0, 2.0])
