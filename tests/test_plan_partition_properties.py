"""Property tests tying the flattened plan to partitioned execution.

Two invariants the partition stack leans on, checked model by model:

* **Plan faithfulness** — for every model family, replaying the
  flattened ``execution_plan()`` with an independent DAG walk (written
  here, not the library's) is bit-identical to running the layer list
  sequentially (``ResidualBlock.forward`` computes body + shortcut
  internally, so the two paths share no traversal code) and to
  ``Sequential.forward`` itself.
* **Cut independence** — *every* legal partition cut of the plan yields
  bit-identical masked logits: a two-stage ``PipelineGroup`` at each of
  the ``n_steps - 1`` possible boundaries, plus the planner's own 3-way
  cut, all match the single whole-model enclave to the last bit.
"""

import numpy as np
import pytest

from repro.models import build_mini_mobilenet, build_mini_resnet, build_mini_vgg
from repro.nn import PLAN_INPUT, Dense, PlainBackend, ReLU, Sequential
from repro.runtime import DarKnightConfig
from repro.sharding import (
    AttestationMesh,
    EnclaveShard,
    LayerPartitionPlanner,
    PipelineGroup,
)

MODELS = {
    "mini-vgg": build_mini_vgg,
    "mini-resnet": build_mini_resnet,
    "mini-mobilenet": build_mini_mobilenet,
}
SHAPE = (3, 8, 8)


def _build(name, seed=0):
    rng = np.random.default_rng(seed)
    return MODELS[name](input_shape=SHAPE, n_classes=4, rng=rng, width=4)


def _replay_plan(net, x):
    """An independent walk of the flattened DAG (no library traversal)."""
    backend = PlainBackend()
    plan = net.execution_plan()
    values = {PLAN_INPUT: x}
    for i, step in enumerate(plan):
        if len(step.deps) == 2:
            a, b = (values[d] for d in step.deps)
            values[i] = step.layer.join(a, b, training=False)
        else:
            values[i] = step.layer.forward(
                values[step.deps[0]], backend, training=False
            )
    return values[len(plan) - 1]


@pytest.mark.parametrize("name", sorted(MODELS))
def test_flattened_plan_replays_bit_identical_to_forward(name):
    net = _build(name)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2, *SHAPE))
    replayed = _replay_plan(net, x)
    # Sequential layer-list execution: blocks run un-flattened.
    backend = PlainBackend()
    h = x
    for layer in net.layers:
        h = layer.forward(h, backend, training=False)
    assert np.array_equal(replayed, h)
    assert np.array_equal(replayed, net.forward(x, backend, training=False))


@pytest.mark.parametrize("name", sorted(MODELS))
def test_planner_cuts_are_valid_for_every_model(name):
    net = _build(name)
    planner = LayerPartitionPlanner(net)
    n_steps = len(net.execution_plan())
    previous = None
    for n in range(1, min(4, n_steps) + 1):
        ranges = planner.plan(n)
        assert ranges[0][0] == 0 and ranges[-1][1] == n_steps
        assert all(hi > lo for lo, hi in ranges)
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        bottleneck = planner.bottleneck(ranges)
        if previous is not None:
            assert bottleneck <= previous
        previous = bottleneck


def _masked_reference(net, cfg, x, shard_id=9):
    shard = EnclaveShard.provision(shard_id, net, cfg)
    groups, _ = shard.run_window([(x, 0.0)])
    return np.asarray(groups[0].output)


def _run_cut(net, cfg, shards, mesh, ranges, x, group_id):
    group = PipelineGroup(group_id, shards[: len(ranges)], ranges, mesh)
    finals, _ = group.run_window([(x, 0.0)])
    return np.asarray(finals[0].output)


@pytest.mark.parametrize("name", ["mini-resnet", "mini-vgg"])
def test_every_legal_two_stage_cut_serves_bit_identical_logits(name):
    """Exhaustive over all n_steps - 1 boundaries, plus the 3-way plan."""
    net = _build(name)
    cfg = DarKnightConfig(virtual_batch_size=2, seed=0)
    rng = np.random.default_rng(2)
    x = rng.standard_normal((2, *SHAPE))
    reference = _masked_reference(net, cfg, x)
    n_steps = len(net.execution_plan())
    shards = [EnclaveShard.provision(i, net, cfg) for i in range(3)]
    mesh = AttestationMesh(shards).establish()
    for cut in range(1, n_steps):
        got = _run_cut(
            net, cfg, shards, mesh, [(0, cut), (cut, n_steps)], x, 100 + cut
        )
        assert np.array_equal(got, reference), f"{name}: cut at step {cut} diverged"
    three_way = LayerPartitionPlanner(net).plan(3)
    got = _run_cut(net, cfg, shards, mesh, three_way, x, 99)
    assert np.array_equal(got, reference), f"{name}: 3-way cut {three_way} diverged"


def test_every_partition_count_of_a_dense_plan_is_bit_identical():
    """A 3-step plan has exactly one 3-way cut and two 2-way cuts; all
    of them (every legal partitioning of the plan) must agree."""
    rng = np.random.default_rng(3)
    net = Sequential(
        [Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,)
    )
    cfg = DarKnightConfig(virtual_batch_size=2, seed=0)
    x = rng.standard_normal((2, 16))
    reference = _masked_reference(net, cfg, x)
    shards = [EnclaveShard.provision(i, net, cfg) for i in range(3)]
    mesh = AttestationMesh(shards).establish()
    cuts = [
        [(0, 1), (1, 3)],
        [(0, 2), (2, 3)],
        [(0, 1), (1, 2), (2, 3)],
    ]
    for i, ranges in enumerate(cuts):
        got = _run_cut(net, cfg, shards, mesh, ranges, x, 200 + i)
        assert np.array_equal(got, reference), f"ranges {ranges} diverged"
