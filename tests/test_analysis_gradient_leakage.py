"""Tests for the gradient-leakage analysis (Section 6's large-batch claim)."""

import pytest

from repro.analysis import gradient_leakage_curve, leakage_reduction
from repro.data import cifar_like
from repro.errors import ConfigurationError
from repro.models import build_mini_vgg


@pytest.fixture()
def setup(nprng):
    data = cifar_like(n_train=32, n_test=8, seed=0, size=8)
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=nprng, width=8)
    return net, data


def test_single_sample_alignment_is_one(setup):
    net, data = setup
    points = gradient_leakage_curve(
        net, data.x_train, data.y_train, batch_sizes=(1,), seed=0
    )
    assert points[0].alignment == pytest.approx(1.0, abs=1e-9)


def test_alignment_decays_with_batch_size(setup):
    """The paper's mitigation, measured: bigger aggregates dilute any single
    sample's gradient signature."""
    net, data = setup
    points = gradient_leakage_curve(
        net, data.x_train, data.y_train, batch_sizes=(1, 4, 16), seed=0
    )
    alignments = [p.alignment for p in points]
    assert alignments[0] > alignments[1] > alignments[2]
    assert leakage_reduction(points) > 0.3


def test_batch_sizes_recorded(setup):
    net, data = setup
    points = gradient_leakage_curve(
        net, data.x_train, data.y_train, batch_sizes=(2, 8), seed=1
    )
    assert [p.batch_size for p in points] == [2, 8]
    assert all(0.0 <= p.alignment <= 1.0 + 1e-9 for p in points)


def test_validation(setup):
    net, data = setup
    with pytest.raises(ConfigurationError):
        gradient_leakage_curve(net, data.x_train, data.y_train, batch_sizes=(999,))
    with pytest.raises(ConfigurationError):
        gradient_leakage_curve(
            net, data.x_train, data.y_train, batch_sizes=(2,), target_index=-1
        )
    with pytest.raises(ConfigurationError):
        leakage_reduction(
            gradient_leakage_curve(net, data.x_train, data.y_train, batch_sizes=(1,))
        )
