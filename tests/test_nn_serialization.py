"""Tests for model checkpointing (parameters + BN running statistics)."""

import numpy as np
import pytest

from repro.data import cifar_like
from repro.errors import ConfigurationError
from repro.models import build_mini_resnet, build_mini_vgg
from repro.nn import load_checkpoint, save_checkpoint
from repro.runtime import Trainer


def test_roundtrip_preserves_predictions(tmp_path, nprng):
    data = cifar_like(n_train=32, n_test=8, seed=0, size=8)
    net = build_mini_resnet(input_shape=(3, 8, 8), n_classes=10, rng=nprng, width=8)
    Trainer(net, lr=0.05).fit(data.x_train, data.y_train, epochs=1, batch_size=16)
    expected = net.predict(data.x_test)

    path = save_checkpoint(net, tmp_path / "ckpt")
    assert path.suffix == ".npz"

    fresh = build_mini_resnet(
        input_shape=(3, 8, 8), n_classes=10, rng=np.random.default_rng(99), width=8
    )
    # Fresh nets have different auto layer names; remap by position so the
    # checkpoint applies (names must match for load).
    assert not np.allclose(fresh.predict(data.x_test), expected)
    load_into = build_and_load_by_rename(net, fresh, path)
    assert np.allclose(load_into.predict(data.x_test), expected)


def build_and_load_by_rename(source, target, path):
    """Align target layer names with the source's, then load."""
    src_layers = list(source._walk_layers())
    tgt_layers = list(target._walk_layers())
    assert len(src_layers) == len(tgt_layers)
    for s, t in zip(src_layers, tgt_layers):
        t.name = s.name
    load_checkpoint(target, path)
    return target


def test_bn_running_stats_saved(tmp_path, nprng):
    net = build_mini_resnet(input_shape=(3, 8, 8), n_classes=10, rng=nprng, width=8)
    x = nprng.normal(size=(8, 3, 8, 8))
    net.forward(x, training=True)  # moves running stats off their init
    path = save_checkpoint(net, tmp_path / "bn_ckpt.npz")
    with np.load(path) as archive:
        running_keys = [k for k in archive.files if k.startswith("__running__/")]
    assert running_keys  # BN statistics present in the archive


def test_missing_file_raises(tmp_path, nprng):
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=nprng, width=8)
    with pytest.raises(ConfigurationError):
        load_checkpoint(net, tmp_path / "nope.npz")


def test_wrong_architecture_raises(tmp_path, nprng):
    small = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=nprng, width=8)
    path = save_checkpoint(small, tmp_path / "small.npz")
    bigger = build_mini_vgg(
        input_shape=(3, 8, 8), n_classes=10, rng=np.random.default_rng(1), width=16
    )
    # Align names so the mismatch is about *shapes*, not key names.
    for s, t in zip(small._walk_layers(), bigger._walk_layers()):
        t.name = s.name
    with pytest.raises(ConfigurationError):
        load_checkpoint(bigger, path)


def test_vgg_checkpoint_without_bn(tmp_path, nprng):
    """Models without BN round-trip too (no running-stat keys expected)."""
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=nprng, width=8)
    path = save_checkpoint(net, tmp_path / "vgg")
    with np.load(path) as archive:
        assert not [k for k in archive.files if k.startswith("__running__/")]
    load_checkpoint(net, path)  # idempotent reload
