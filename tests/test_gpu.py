"""Tests for the simulated accelerators: kernels, devices, faults, cluster."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GpuError
from repro.fieldmath import field_matmul
from repro.gpu import (
    FieldKernels,
    GpuCluster,
    RandomTamper,
    SimulatedGpu,
    TargetedTamper,
)
from repro.nn import functional as F


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def test_field_conv_matches_float_conv_on_small_values(field, frng):
    """Field conv on signed-lifted ints equals integer conv."""
    kernels = FieldKernels(field)
    x_int = frng.generator.integers(-5, 6, size=(2, 6, 6))
    w_int = frng.generator.integers(-3, 4, size=(4, 2, 3, 3))
    out = kernels.conv2d(field.from_signed(x_int), field.from_signed(w_int), 1, 1)
    expected = F.conv2d_via_matmul(
        x_int[None].astype(np.int64), w_int.astype(np.int64), np.matmul, 1, 1
    )[0]
    assert np.array_equal(field.to_signed(out), expected)


def test_field_dense_and_grad(field, frng):
    kernels = FieldKernels(field)
    x = frng.uniform((8,))
    w = frng.uniform((8, 3))
    y = kernels.dense(x, w)
    assert np.array_equal(y, field_matmul(field, x.reshape(1, -1), w).ravel())
    delta = frng.uniform((3,))
    gw = kernels.dense_grad_w(x, delta)
    assert np.array_equal(gw, field_matmul(field, x.reshape(-1, 1), delta.reshape(1, -1)))


def test_scale_accumulate(field, frng):
    kernels = FieldKernels(field)
    tensors = frng.uniform((3, 4, 4))
    scalars = frng.uniform((3,))
    out = kernels.scale_accumulate(tensors, scalars)
    expected = field.zeros((4, 4))
    for t, s in zip(tensors, scalars):
        expected = field.add(expected, field.mul(t, s))
    assert np.array_equal(out, expected)


# ----------------------------------------------------------------------
# device
# ----------------------------------------------------------------------
def test_device_share_storage_and_ledger(field, frng):
    gpu = SimulatedGpu(0, field)
    share = frng.uniform((3, 5, 5))
    gpu.receive_share("layer1/vb0", share)
    assert np.array_equal(gpu.stored_share("layer1/vb0"), share)
    assert gpu.ledger.bytes_received == share.nbytes
    gpu.drop_share("layer1/vb0")
    with pytest.raises(GpuError):
        gpu.stored_share("layer1/vb0")


def test_device_conv_forward_records_ops(field, frng):
    gpu = SimulatedGpu(0, field)
    gpu.load_weights("w", frng.uniform((4, 3, 3, 3)))
    gpu.receive_share("s", frng.uniform((3, 8, 8)))
    out = gpu.conv2d_forward("s", "w", stride=1, pad=1)
    assert out.shape == (4, 8, 8)
    assert gpu.ledger.mac_ops > 0
    assert gpu.ledger.kernel_calls == 1
    assert "conv2d_forward" in gpu.ledger.ops_by_name


def test_device_backward_equations(field, frng):
    gpu = SimulatedGpu(1, field)
    gpu.receive_share("s", frng.uniform((6,)))
    eq = gpu.backward_equation_dense("s", frng.uniform((3,)))
    assert eq.shape == (6, 3)
    gpu.receive_share("c", frng.uniform((2, 5, 5)))
    eq2 = gpu.backward_equation_conv("c", frng.uniform((4, 3, 3)), 3, 3)
    assert eq2.shape == (4, 2, 3, 3)


# ----------------------------------------------------------------------
# faults
# ----------------------------------------------------------------------
def test_random_tamper_changes_output(field, frng):
    tamper = RandomTamper(field, probability=1.0, n_entries=2, seed=0)
    clean = frng.uniform((4, 4))
    dirty = tamper.corrupt(clean, 0, "op")
    assert not np.array_equal(clean, dirty)
    assert tamper.tamper_count == 1
    # Exactly 2 entries changed.
    assert int(np.sum(clean != dirty)) == 2


def test_random_tamper_probability_zero_is_honest(field, frng):
    tamper = RandomTamper(field, probability=0.0, seed=0)
    clean = frng.uniform((4,))
    assert np.array_equal(tamper.corrupt(clean, 0, "op"), clean)
    assert tamper.tamper_count == 0


def test_targeted_tamper_only_hits_target_op(field, frng):
    inner = RandomTamper(field, probability=1.0, seed=0)
    tamper = TargetedTamper(inner, target_op="backward_equation_dense")
    clean = frng.uniform((4,))
    assert np.array_equal(tamper.corrupt(clean, 0, "conv2d_forward"), clean)
    assert not np.array_equal(
        tamper.corrupt(clean, 0, "backward_equation_dense"), clean
    )


def test_tamper_validation(field):
    with pytest.raises(ConfigurationError):
        RandomTamper(field, probability=2.0)
    with pytest.raises(ConfigurationError):
        RandomTamper(field, n_entries=0)


# ----------------------------------------------------------------------
# cluster
# ----------------------------------------------------------------------
def test_cluster_scatter_one_share_per_gpu(field, frng):
    cluster = GpuCluster(field, 4)
    shares = frng.uniform((3, 2, 2))
    cluster.scatter_shares("k", shares)
    for j in range(3):
        assert np.array_equal(cluster[j].stored_share("k"), shares[j])
    with pytest.raises(GpuError):
        cluster[3].stored_share("k")  # device 3 got nothing


def test_cluster_rejects_too_many_shares(field, frng):
    cluster = GpuCluster(field, 2)
    with pytest.raises(GpuError):
        cluster.scatter_shares("k", frng.uniform((3, 2)))


def test_cluster_broadcast_and_map(field, frng):
    cluster = GpuCluster(field, 3)
    w = frng.uniform((6, 4))
    cluster.broadcast_weights("w", w)
    shares = frng.uniform((3, 6))
    cluster.scatter_shares("s", shares)
    outs = cluster.map_shares(3, lambda dev: dev.dense_forward("s", "w"))
    for j in range(3):
        assert np.array_equal(
            outs[j], field_matmul(field, shares[j].reshape(1, -1), w).ravel()
        )


def test_cluster_map_with_rows(field, frng):
    cluster = GpuCluster(field, 3)
    deltas = frng.uniform((2, 4))
    rows = [frng.uniform((2,)) for _ in range(3)]
    outs = cluster.map_with_rows(
        3, rows, lambda dev, row: dev.combine_deltas(deltas, row)
    )
    assert outs.shape == (3, 4)


def test_cluster_validation(field):
    with pytest.raises(ConfigurationError):
        GpuCluster(field, 1)
    with pytest.raises(ConfigurationError):
        GpuCluster(field, 2, fault_injectors={5: None})


def test_cluster_accounting(field, frng):
    cluster = GpuCluster(field, 2)
    cluster.broadcast_weights("w", frng.uniform((6, 4)))
    cluster.scatter_shares("s", frng.uniform((2, 6)))
    cluster.map_shares(2, lambda dev: dev.dense_forward("s", "w"))
    assert cluster.total_mac_ops() > 0
    assert cluster.total_bytes_moved() > 0
    cluster.drop_shares("s")
    with pytest.raises(GpuError):
        cluster[0].stored_share("s")
