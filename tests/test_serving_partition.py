"""End-to-end tests for layer-partitioned (``layered:N``) serving.

The server-level contract: partitioning is a pure placement decision —
``replicated`` and every ``layered:N`` deployment serve bit-identical
logits on the same trace, including under mid-window member failure with
group-granular failover — and the config surface round-trips, validates
its composition rules, and reports the active mode.  The audit trail
fans one chain out per *member* shard, so the verifiable record keeps
shard granularity even when routing happens at group granularity.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import Dense, ReLU, Sequential
from repro.runtime import DarKnightConfig
from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace


def _tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def _serve(trace, num_shards, partition, **kwargs):
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=num_shards)
    config = ServingConfig(
        darknight=dk, partition=partition, queue_capacity=512, **kwargs
    )
    server = PrivateInferenceServer(_tiny_net(), config)
    return server, server.serve_trace(trace)


# ----------------------------------------------------------------------
# config surface
# ----------------------------------------------------------------------
def test_serving_config_round_trips_partition():
    config = ServingConfig(
        darknight=DarKnightConfig(num_shards=4), partition="layered:2"
    )
    data = config.to_dict()
    assert data["partition"] == "layered:2"
    assert ServingConfig.from_dict(data).partition == "layered:2"
    # Default stays replicated and survives the round trip too.
    assert ServingConfig.from_dict(ServingConfig().to_dict()).partition == "replicated"


def test_layered_requires_divisible_shard_count():
    with pytest.raises(ConfigurationError, match="divisible"):
        _serve([], 4, "layered:3")


def test_layered_does_not_compose_with_autoscale():
    from repro.serving import AutoscaleConfig

    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=2)
    config = ServingConfig(
        darknight=dk, partition="layered:2", autoscale=AutoscaleConfig()
    )
    with pytest.raises(ConfigurationError, match="autoscale"):
        PrivateInferenceServer(_tiny_net(), config)


def test_layered_refuses_dynamic_membership():
    server, _ = _serve([], 2, "layered:2")
    with pytest.raises(ConfigurationError, match="replicated"):
        server.provision_shard()
    with pytest.raises(ConfigurationError, match="replicated"):
        server.decommission_shard(0)


# ----------------------------------------------------------------------
# bit-identity across partitionings
# ----------------------------------------------------------------------
def test_partitionings_serve_bit_identical_logits():
    """replicated, layered:2 and layered:3 agree to the last bit."""
    trace = synthetic_trace(24, (16,), n_tenants=6, mean_interarrival=1e-4, seed=7)
    runs = {
        "replicated": _serve(trace, 1, "replicated"),
        "layered:2": _serve(trace, 2, "layered:2"),
        "layered:3": _serve(trace, 3, "layered:3"),
    }
    baseline = {
        o.request_id: o.logits for o in runs["replicated"][1].completed
    }
    for mode, (_, report) in runs.items():
        assert len(report.completed) == 24, mode
        assert all(o.ok for o in report.outcomes), mode
        assert report.partition == mode
        for o in report.completed:
            assert np.array_equal(o.logits, baseline[o.request_id]), (
                f"request {o.request_id} differs under {mode}"
            )


def test_layered_builds_groups_as_routing_units():
    server, report = _serve(
        synthetic_trace(8, (16,), n_tenants=2, mean_interarrival=1e-4, seed=8),
        6,
        "layered:3",
    )
    assert server.groups is not None and len(server.groups) == 2
    assert len(server.shards) == 6
    assert {m.shard_id for g in server.groups for m in g.members} == set(range(6))
    assert len(report.completed) == 8
    assert "partition layered:3" in report.render()


# ----------------------------------------------------------------------
# failover at group granularity
# ----------------------------------------------------------------------
def test_member_death_fails_over_the_whole_group_bit_identically():
    """Killing one *member* mid-window moves its group's sessions to the
    surviving group; nothing is lost and logits match a healthy run."""
    trace = synthetic_trace(24, (16,), n_tenants=6, mean_interarrival=1e-4, seed=9)
    _, healthy = _serve(trace, 6, "layered:3")
    baseline = {o.request_id: o.logits for o in healthy.completed}

    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=6)
    config = ServingConfig(darknight=dk, partition="layered:3", queue_capacity=512)
    server = PrivateInferenceServer(_tiny_net(), config)
    # Middle stage of group 0 (shards 0-2) dies after one batch.
    server.shards[1].fail_after(1)
    report = server.serve_trace(trace)

    assert len(report.completed) == 24
    assert all(o.ok for o in report.outcomes)
    assert report.failovers >= 1
    for o in report.completed:
        assert np.array_equal(o.logits, baseline[o.request_id])
    # The failed unit is group 0; group 1's members are untouched.
    assert not server.groups[0].healthy
    assert server.groups[1].healthy


# ----------------------------------------------------------------------
# audit fan-out
# ----------------------------------------------------------------------
def test_audit_chains_stay_per_member_shard_under_layering(tmp_path):
    from repro.audit import AuditConfig

    trace = synthetic_trace(16, (16,), n_tenants=4, mean_interarrival=1e-4, seed=10)
    server, report = _serve(
        trace, 2, "layered:2", audit=AuditConfig(log_dir=str(tmp_path))
    )
    audit = server.audit
    assert audit is not None
    # Both members committed windows, and every chain verifies.
    assert audit.verify() == audit.windows_committed
    assert set(audit.logs) == {0, 1}
    for log in audit.logs.values():
        assert log.n_windows > 0
    assert report.audit_roots is not None and set(report.audit_roots) == {0, 1}
