"""Tests for adaptive coalescing: learned deadlines + EPC-aware K.

Covers the policy in isolation (EWMA learning, probe-based controller,
EPC fit), its wiring through the scheduler/server, and the three
properties the ISSUE pins down: the deadline never leaves its
``[floor, ceiling]`` band, ``K`` never exceeds the EPC-fitting size, and
static mode stays bit-identical to a server that has never heard of the
feature.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import Dense, ReLU, Sequential
from repro.runtime import DarKnightConfig
from repro.serving import (
    AdaptiveBatchingConfig,
    AdaptiveFlushPolicy,
    PendingRequest,
    PrivateInferenceServer,
    RequestQueue,
    ServingConfig,
    VirtualBatchScheduler,
    WindowFeedback,
    bursty_trace,
    epc_fitting_batch_size,
    estimate_slot_bytes,
    synthetic_trace,
    working_set_bytes,
)


def _tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def _policy(**kwargs):
    defaults = dict(batch_size=4, max_wait=0.01)
    defaults.update(kwargs)
    return AdaptiveFlushPolicy(**defaults)


# ----------------------------------------------------------------------
# policy unit behaviour
# ----------------------------------------------------------------------
def test_static_deadline_until_warmup_completes():
    policy = _policy(config=AdaptiveBatchingConfig(warmup_arrivals=5))
    for i in range(4):
        policy.observe_arrival(i * 1e-4)
        assert policy.current_wait() == policy.ceiling
    policy.observe_arrival(5e-4)
    assert policy.current_wait() < policy.ceiling


def test_deadline_tracks_the_arrival_rate():
    fast = _policy(config=AdaptiveBatchingConfig(warmup_arrivals=0))
    slow = _policy(config=AdaptiveBatchingConfig(warmup_arrivals=0))
    for i in range(20):
        fast.observe_arrival(i * 1e-4)
        slow.observe_arrival(i * 3e-3)
    assert fast.current_wait() < slow.current_wait()


def test_gaps_are_winsorized_at_the_ceiling():
    """A burst boundary (gap >> ceiling) must not blind the EWMA."""
    policy = _policy(config=AdaptiveBatchingConfig(warmup_arrivals=0))
    t = 0.0
    for _ in range(20):
        t += 2e-4
        policy.observe_arrival(t)
    wait_before = policy.current_wait()
    policy.observe_arrival(t + 10.0)  # 10 *seconds* of silence
    # One folded, clamped gap moves the EWMA by at most alpha * ceiling.
    assert policy.current_wait() <= wait_before + policy.ceiling


def test_premature_flush_probe_relaxes_and_free_flush_tightens():
    cfg = AdaptiveBatchingConfig(warmup_arrivals=0)
    relax = _policy(config=cfg)
    for i in range(10):
        relax.observe_arrival(i * 1e-3)
    stretch_before = relax._stretch
    # Early partial flush at t=0.0095 that used 0.5ms of a 10ms budget...
    relax.observe_flush("deadline", 1, wait_used=5e-4, flush_time=9.5e-3)
    # ...and an arrival lands well inside the forfeited window: premature.
    relax.observe_arrival(10.5e-3)
    assert relax.premature_flushes == 1
    assert relax._stretch > stretch_before

    tighten = _policy(config=cfg)
    for i in range(10):
        tighten.observe_arrival(i * 1e-3)
    stretch_before = tighten._stretch
    tighten.observe_flush("deadline", 1, wait_used=5e-4, flush_time=9.5e-3)
    # Next arrival is far beyond the static deadline: the flush was free.
    tighten.observe_arrival(9.5e-3 + 0.5)
    assert tighten.premature_flushes == 0
    assert tighten._stretch < stretch_before


def test_ceiling_bound_partials_carry_no_relax_signal():
    policy = _policy(config=AdaptiveBatchingConfig(warmup_arrivals=0))
    for i in range(10):
        policy.observe_arrival(i * 1e-3)
    policy.observe_flush("deadline", 1, wait_used=policy.ceiling, flush_time=0.02)
    policy.observe_arrival(0.0201)
    assert policy.premature_flushes == 0


def test_service_feedback_raises_the_floor():
    policy = _policy(config=AdaptiveBatchingConfig(warmup_arrivals=0))
    for i in range(20):
        policy.observe_arrival(i * 1e-5)  # very fast arrivals -> tiny wait
    lean = policy.current_wait()
    policy.observe_window(
        WindowFeedback(
            shard_id=0,
            n_batches=1,
            enclave_busy=8e-3,
            makespan=8e-3,
            stage_totals={"encode": 8e-3},
        )
    )
    assert policy.current_wait() > lean


def test_invalid_adaptive_config_rejected():
    with pytest.raises(ConfigurationError):
        AdaptiveBatchingConfig(target_fill=0.0)
    with pytest.raises(ConfigurationError):
        AdaptiveBatchingConfig(min_wait=0.0)
    with pytest.raises(ConfigurationError):
        AdaptiveBatchingConfig(min_wait=1e-3, max_wait=1e-4)
    with pytest.raises(ConfigurationError):
        AdaptiveBatchingConfig(ewma_alpha=1.5)
    with pytest.raises(ConfigurationError):
        AdaptiveBatchingConfig(epc_headroom=0.0)
    with pytest.raises(ConfigurationError):
        AdaptiveBatchingConfig(warmup_arrivals=-1)
    with pytest.raises(ConfigurationError):
        AdaptiveFlushPolicy(batch_size=0, max_wait=0.01)
    with pytest.raises(ConfigurationError):
        AdaptiveFlushPolicy(batch_size=4, max_wait=0.0)
    with pytest.raises(ConfigurationError):
        epc_fitting_batch_size(4, 100, 0)
    with pytest.raises(ConfigurationError):
        working_set_bytes(0, 100)


# ----------------------------------------------------------------------
# property tests (the ISSUE's three invariants)
# ----------------------------------------------------------------------
def test_property_deadline_stays_within_floor_and_ceiling():
    """Whatever the policy observes, the wait stays in [floor, ceiling]."""
    rng = np.random.default_rng(7)
    for trial in range(20):
        policy = _policy(
            config=AdaptiveBatchingConfig(warmup_arrivals=int(rng.integers(0, 6)))
        )
        t = 0.0
        for _ in range(200):
            action = rng.integers(0, 4)
            if action == 0:
                t += float(rng.exponential(10.0 ** rng.uniform(-5, 1)))
                policy.observe_arrival(t)
            elif action == 1:
                policy.observe_flush(
                    "deadline",
                    int(rng.integers(0, 5)),
                    wait_used=float(rng.uniform(0, policy.ceiling)),
                    flush_time=t,
                )
            elif action == 2:
                policy.observe_flush("size", 4)
            else:
                policy.observe_window(
                    WindowFeedback(
                        shard_id=0,
                        n_batches=int(rng.integers(1, 4)),
                        enclave_busy=float(rng.exponential(1e-3)),
                        makespan=float(rng.exponential(1e-2)),
                        stage_totals={},
                    )
                )
            wait = policy.current_wait(pending=int(rng.integers(0, 8)))
            assert policy.floor <= wait <= policy.ceiling


def test_property_k_never_exceeds_the_epc_fitting_size():
    """For any (slot bytes, budget), the policy's K is at most the fit,
    and the fit's working set is within budget (or K hit the floor of 1)."""
    rng = np.random.default_rng(11)
    for _ in range(100):
        base_k = int(rng.integers(1, 12))
        slot_bytes = int(rng.integers(1, 10**6))
        budget = int(rng.integers(1, 10**8))
        depth = int(rng.integers(1, 4))
        fit = epc_fitting_batch_size(base_k, slot_bytes, budget, pipeline_depth=depth)
        assert 1 <= fit <= base_k
        if fit > 1:
            assert (
                working_set_bytes(fit, slot_bytes, pipeline_depth=depth) <= budget
            )
        policy = AdaptiveFlushPolicy(
            base_k,
            0.01,
            config=AdaptiveBatchingConfig(epc_headroom=1.0),
            slot_bytes=slot_bytes,
            epc_budget_bytes=budget,
            pipeline_depth=depth,
        )
        assert policy.batch_size <= fit
        # Runtime observations can only tighten the cap, never widen it.
        policy.observe_window(
            WindowFeedback(
                shard_id=0,
                n_batches=1,
                enclave_busy=1e-3,
                makespan=1e-3,
                stage_totals={},
                slot_bytes_observed=slot_bytes * 2,
            )
        )
        assert policy.batch_size <= fit


def test_property_static_mode_is_bit_identical():
    """adaptive=None serves the same bits, times, and batch ids as a
    pre-feature server on the same trace."""
    trace = synthetic_trace(40, (16,), n_tenants=4, mean_interarrival=5e-4, seed=9)
    reports = []
    for _ in range(2):
        config = ServingConfig(
            darknight=DarKnightConfig(virtual_batch_size=4, seed=0),
            max_batch_wait=0.01,
            queue_capacity=128,
        )
        server = PrivateInferenceServer(_tiny_net(), config)
        assert all(s is None for s in server.scheduler.policy_snapshots())
        reports.append(server.serve_trace(trace))
    first, second = reports
    assert first.adaptive == second.adaptive == [None]
    a = {o.request_id: o for o in first.completed}
    b = {o.request_id: o for o in second.completed}
    assert sorted(a) == sorted(b)
    for rid in a:
        assert np.array_equal(a[rid].logits, b[rid].logits)
        assert a[rid].completion_time == b[rid].completion_time
        assert a[rid].batch_id == b[rid].batch_id


# ----------------------------------------------------------------------
# wiring through scheduler and server
# ----------------------------------------------------------------------
def _push(queue, request_id, tenant="t0", t=0.0):
    queue.push(
        PendingRequest(
            request_id=request_id,
            tenant=tenant,
            x=np.zeros(4),
            arrival_time=t,
            enqueue_time=t,
        )
    )


def test_scheduler_uses_the_learned_deadline():
    queue = RequestQueue(capacity=64)
    policy = _policy(config=AdaptiveBatchingConfig(warmup_arrivals=0))
    sched = VirtualBatchScheduler(queue, batch_size=4, max_wait=0.01, policy=policy)
    # Teach a ~0.1ms arrival process.
    for i in range(20):
        sched.observe_arrival(i * 1e-4)
    _push(queue, 0, t=0.002)
    learned = sched.current_wait()
    assert learned < sched.max_wait
    # The partial flushes at its *learned* deadline, long before 10ms.
    assert sched.collect_expired(now=0.002 + learned - 1e-6) == []
    batches = sched.collect_expired(now=0.01)
    assert len(batches) == 1
    assert batches[0].flush_time == pytest.approx(0.002 + learned)


def test_scheduler_caps_batch_size_at_the_epc_fit():
    queue = RequestQueue(capacity=64)
    policy = AdaptiveFlushPolicy(
        8,
        0.01,
        config=AdaptiveBatchingConfig(epc_headroom=1.0),
        slot_bytes=128,
        # Budget fits K=2: (2 + 2*(2+1)) * 128 = 1024.
        epc_budget_bytes=1024,
    )
    sched = VirtualBatchScheduler(queue, batch_size=8, max_wait=0.01, policy=policy)
    assert sched.effective_batch_size == 2
    for i in range(6):
        _push(queue, i)
    batches = sched.collect_ready(now=0.0)
    assert [b.n_requests for b in batches] == [2, 2, 2]


def test_sharded_scheduler_rejects_mismatched_policies():
    from repro.serving import ShardedBatchScheduler

    queues = [RequestQueue(16), RequestQueue(16)]
    with pytest.raises(ConfigurationError):
        ShardedBatchScheduler(queues, 4, policies=[_policy()])


def test_server_threads_feedback_into_per_shard_policies():
    """End to end: policies learn arrivals *and* measured window timings,
    shards independently."""
    trace = bursty_trace(
        60, (16,), n_tenants=6, burst_size=10, intra_gap=2e-4, burst_gap=2e-2, seed=3
    )
    config = ServingConfig(
        darknight=DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=2),
        adaptive=AdaptiveBatchingConfig(),
        max_batch_wait=0.01,
        queue_capacity=256,
    )
    server = PrivateInferenceServer(_tiny_net(), config)
    report = server.serve_trace(trace)
    assert len(report.completed) == 60
    snaps = report.adaptive
    assert len(snaps) == 2 and all(s is not None for s in snaps)
    # Every shard saw arrivals and real pipeline timings.
    assert sum(s["arrivals"] for s in snaps) == 60
    assert all(s["service_ewma"] is not None and s["service_ewma"] > 0 for s in snaps)
    assert all(s["gap_ewma"] is not None for s in snaps)
    # Shards learned independently (different tenant mixes -> state).
    assert snaps[0]["arrivals"] != snaps[1]["arrivals"] or (
        snaps[0]["gap_ewma"] != snaps[1]["gap_ewma"]
    )
    # Telemetry is strict-JSON-safe.
    import json

    def _reject(_):
        raise AssertionError("non-finite leaked into adaptive telemetry")

    json.loads(json.dumps(snaps), parse_constant=_reject)
    assert "adaptive: K=" in report.render()


def test_server_clamps_provisioned_k_to_the_epc_budget():
    net = _tiny_net()
    slot = estimate_slot_bytes(net)
    assert slot == 16 * 8  # widest activation of the tiny dense net
    budget = working_set_bytes(2, slot) + slot  # fits K=2, not K=3
    config = ServingConfig(
        darknight=DarKnightConfig(
            virtual_batch_size=4, seed=0, epc_budget_bytes=budget
        ),
        adaptive=AdaptiveBatchingConfig(epc_headroom=1.0),
        queue_capacity=64,
    )
    server = PrivateInferenceServer(net, config)
    assert server.darknight.virtual_batch_size == 2
    # The shard's enclave models the shrunken EPC too.
    assert server.shards[0].enclave.epc.usable_bytes == budget
    trace = synthetic_trace(12, (16,), n_tenants=2, mean_interarrival=1e-3, seed=1)
    report = server.serve_trace(trace)
    assert len(report.completed) == 12
    assert not server.shards[0].enclave.epc.is_overflowing


def test_cli_adaptive_flags():
    from repro.cli import main

    assert main(["serve", "--requests", "16", "--adaptive-batching"]) == 0
    assert (
        main(
            [
                "serve", "--requests", "16", "--adaptive-batching",
                "--target-fill", "0.9", "--epc-budget", "4096",
            ]
        )
        == 0
    )
    # Adaptive-only flags without --adaptive-batching are config errors —
    # even at their default values.
    assert main(["serve", "--requests", "8", "--target-fill", "0.85"]) == 2
    assert main(["serve", "--requests", "8", "--epc-budget", "4096"]) == 2
    # Invalid EPC budget surfaces as a clean error, not a traceback.
    assert (
        main(
            [
                "serve", "--requests", "8", "--adaptive-batching",
                "--epc-budget", "-1",
            ]
        )
        == 2
    )
