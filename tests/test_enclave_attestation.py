"""Tests for the attestation simulation."""

import pytest

from repro.enclave import AttestationService, measure_enclave
from repro.errors import AttestationError


def test_measurement_deterministic():
    assert measure_enclave("code-v1") == measure_enclave(b"code-v1")
    assert measure_enclave("code-v1") != measure_enclave("code-v2")


def test_quote_verifies_for_expected_code():
    svc = AttestationService(b"platform-key-16bytes")
    m = measure_enclave("darknight-enclave")
    quote = svc.quote(m, report_data=b"session-42")
    assert svc.verify(quote, expected_measurement=m)


def test_wrong_measurement_rejected():
    svc = AttestationService(b"platform-key-16bytes")
    quote = svc.quote(measure_enclave("evil"))
    with pytest.raises(AttestationError, match="measurement mismatch"):
        svc.verify(quote, expected_measurement=measure_enclave("darknight-enclave"))


def test_forged_signature_rejected():
    svc = AttestationService(b"platform-key-16bytes")
    other = AttestationService(b"different-key-16byte")
    m = measure_enclave("darknight-enclave")
    quote = other.quote(m)  # signed by the wrong platform
    with pytest.raises(AttestationError, match="signature"):
        svc.verify(quote, expected_measurement=m)


def test_report_data_bound_to_signature():
    svc = AttestationService(b"platform-key-16bytes")
    m = measure_enclave("e")
    quote = svc.quote(m, report_data=b"a")
    forged = type(quote)(measurement=m, report_data=b"b", signature=quote.signature)
    with pytest.raises(AttestationError):
        svc.verify(forged, expected_measurement=m)


def test_short_platform_key_rejected():
    with pytest.raises(AttestationError):
        AttestationService(b"short")
