"""Tests for the tensor kernels: conv/pool/activations vs naive references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.nn import functional as F


def _naive_conv2d(x, w, stride, pad):
    """Direct quadruple-loop convolution reference."""
    n, c, h, win = x.shape
    f, _, kh, kw = w.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (win + 2 * pad - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((n, f, oh, ow))
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nchw,fchw->nf", patch, w)
    return out


@settings(max_examples=10, deadline=None)
@given(
    stride=st.integers(1, 2),
    pad=st.integers(0, 2),
    kh=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_conv2d_matches_naive(stride, pad, kh, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, 3, 7, 7))
    w = rng.normal(size=(4, 3, kh, kh))
    if (7 + 2 * pad - kh) // stride + 1 < 1:
        return
    ours = F.conv2d_via_matmul(x, w, np.matmul, stride, pad)
    naive = _naive_conv2d(x, w, stride, pad)
    assert np.allclose(ours, naive)


def test_conv_output_size_validation():
    assert F.conv_output_size(8, 3, 1, 1) == 8
    assert F.conv_output_size(8, 2, 2, 0) == 4
    with pytest.raises(ConfigurationError):
        F.conv_output_size(2, 5, 1, 0)


def test_im2col_col2im_adjoint(nprng):
    """<im2col(x), y> == <x, col2im(y)> — the adjoint property grad code relies on."""
    x = nprng.normal(size=(2, 3, 6, 6))
    cols = F.im2col(x, 3, 3, stride=1, pad=1)
    y = nprng.normal(size=cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * F.col2im(y, x.shape, 3, 3, stride=1, pad=1)))
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_im2col_preserves_dtype(nprng):
    x = nprng.integers(0, 100, size=(1, 2, 5, 5)).astype(np.int64)
    cols = F.im2col(x, 3, 3)
    assert cols.dtype == np.int64


def test_conv2d_grad_w_matches_numeric(nprng):
    x = nprng.normal(size=(2, 2, 5, 5))
    w = nprng.normal(size=(3, 2, 3, 3))
    delta = nprng.normal(size=(2, 3, 5, 5))
    grad = F.conv2d_grad_w(x, delta, 3, 3, np.matmul, 1, 1)
    eps = 1e-6
    idx = (1, 0, 2, 1)
    w_plus = w.copy(); w_plus[idx] += eps
    w_minus = w.copy(); w_minus[idx] -= eps
    num = (
        np.sum(F.conv2d_via_matmul(x, w_plus, np.matmul, 1, 1) * delta)
        - np.sum(F.conv2d_via_matmul(x, w_minus, np.matmul, 1, 1) * delta)
    ) / (2 * eps)
    assert grad[idx] == pytest.approx(num, rel=1e-5)


def test_conv2d_grad_x_matches_numeric(nprng):
    x = nprng.normal(size=(1, 2, 5, 5))
    w = nprng.normal(size=(3, 2, 3, 3))
    delta = nprng.normal(size=(1, 3, 5, 5))
    grad = F.conv2d_grad_x(w, delta, x.shape, np.matmul, 1, 1)
    eps = 1e-6
    idx = (0, 1, 2, 3)
    x_plus = x.copy(); x_plus[idx] += eps
    x_minus = x.copy(); x_minus[idx] -= eps
    num = (
        np.sum(F.conv2d_via_matmul(x_plus, w, np.matmul, 1, 1) * delta)
        - np.sum(F.conv2d_via_matmul(x_minus, w, np.matmul, 1, 1) * delta)
    ) / (2 * eps)
    assert grad[idx] == pytest.approx(num, rel=1e-5)


def test_conv_channel_mismatch(nprng):
    with pytest.raises(ConfigurationError):
        F.conv2d_via_matmul(
            nprng.normal(size=(1, 2, 5, 5)), nprng.normal(size=(3, 4, 3, 3)), np.matmul
        )


def test_depthwise_conv_matches_grouped_naive(nprng):
    x = nprng.normal(size=(2, 3, 6, 6))
    w = nprng.normal(size=(3, 3, 3))
    out = F.depthwise_conv2d(x, w, stride=1, pad=1)
    for c in range(3):
        ref = _naive_conv2d(x[:, c : c + 1], w[c][None, None], 1, 1)
        assert np.allclose(out[:, c : c + 1], ref)


def test_depthwise_grads_numeric(nprng):
    x = nprng.normal(size=(1, 2, 5, 5))
    w = nprng.normal(size=(2, 3, 3))
    delta = nprng.normal(size=(1, 2, 5, 5))
    gw = F.depthwise_conv2d_grad_w(x, delta, 3, 3, 1, 1)
    gx = F.depthwise_conv2d_grad_x(w, delta, x.shape, 1, 1)
    eps = 1e-6
    wi = (1, 0, 2)
    wp = w.copy(); wp[wi] += eps
    wm = w.copy(); wm[wi] -= eps
    num_w = (np.sum(F.depthwise_conv2d(x, wp, 1, 1) * delta)
             - np.sum(F.depthwise_conv2d(x, wm, 1, 1) * delta)) / (2 * eps)
    assert gw[wi] == pytest.approx(num_w, rel=1e-5)
    xi = (0, 1, 3, 2)
    xp = x.copy(); xp[xi] += eps
    xm = x.copy(); xm[xi] -= eps
    num_x = (np.sum(F.depthwise_conv2d(xp, w, 1, 1) * delta)
             - np.sum(F.depthwise_conv2d(xm, w, 1, 1) * delta)) / (2 * eps)
    assert gx[xi] == pytest.approx(num_x, rel=1e-5)


def test_depthwise_channel_mismatch(nprng):
    with pytest.raises(ConfigurationError):
        F.depthwise_conv2d(nprng.normal(size=(1, 2, 5, 5)), nprng.normal(size=(3, 3, 3)))


def test_relu_and_grad(nprng):
    x = np.array([-2.0, 0.0, 3.0])
    assert F.relu(x).tolist() == [0.0, 0.0, 3.0]
    g = F.relu_grad(x, np.ones(3))
    assert g.tolist() == [0.0, 0.0, 1.0]


def test_maxpool_and_grad(nprng):
    x = nprng.normal(size=(2, 3, 6, 6))
    out, argmax = F.maxpool2d(x, 2)
    assert out.shape == (2, 3, 3, 3)
    # Every pooled value is the max of its window.
    for n in range(2):
        for c in range(3):
            for i in range(3):
                for j in range(3):
                    window = x[n, c, 2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
                    assert out[n, c, i, j] == window.max()
    # Gradient scatters exactly to the argmax positions.
    grad = F.maxpool2d_grad(np.ones_like(out), argmax, x.shape, 2)
    assert grad.sum() == pytest.approx(out.size)
    assert set(np.unique(grad)).issubset({0.0, 1.0})


def test_avgpool_and_grad(nprng):
    x = nprng.normal(size=(1, 2, 4, 4))
    out = F.avgpool2d(x, 2)
    assert out[0, 0, 0, 0] == pytest.approx(x[0, 0, :2, :2].mean())
    grad = F.avgpool2d_grad(np.ones_like(out), x.shape, 2)
    assert np.allclose(grad, 0.25)


def test_softmax_and_cross_entropy(nprng):
    logits = nprng.normal(size=(4, 10))
    probs = F.softmax(logits)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert np.all(probs > 0)
    labels = np.array([0, 1, 2, 3])
    ce = F.cross_entropy(probs, labels)
    assert ce > 0
    # Perfectly confident predictions give ~0 loss.
    perfect = np.eye(10)[labels]
    assert F.cross_entropy(perfect, labels) == pytest.approx(0.0, abs=1e-9)


def test_softmax_numerically_stable():
    probs = F.softmax(np.array([[1000.0, 1000.0]]))
    assert np.allclose(probs, 0.5)
