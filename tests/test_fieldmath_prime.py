"""Unit + property tests for prime-field element arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.fieldmath import DEFAULT_PRIME, PrimeField

elements = st.integers(min_value=0, max_value=DEFAULT_PRIME - 1)


def test_default_prime_value(field):
    assert field.p == 2**25 - 39 == 33554393


def test_rejects_composite_modulus():
    with pytest.raises(FieldError):
        PrimeField(p=2**25 - 40)


def test_rejects_oversized_modulus():
    with pytest.raises(FieldError):
        PrimeField(p=2**31 + 11)


def test_element_reduces_into_range(field):
    arr = field.element([-1, 0, field.p, field.p + 5, -field.p - 3])
    assert field.is_canonical(arr)
    assert arr.tolist() == [field.p - 1, 0, 0, 5, field.p - 3]


def test_is_canonical_rejects_floats(field):
    assert not field.is_canonical(np.array([0.5, 1.0]))


@settings(max_examples=50, deadline=None)
@given(a=elements, b=elements)
def test_add_sub_inverse_ops(a, b):
    field = PrimeField()
    s = field.add(a, b)
    assert int(field.sub(s, b)) == a
    assert int(field.add(field.neg(a), a)) == 0


@settings(max_examples=50, deadline=None)
@given(a=elements, b=elements, c=elements)
def test_mul_distributes_over_add(a, b, c):
    field = PrimeField()
    left = field.mul(a, field.add(b, c))
    right = field.add(field.mul(a, b), field.mul(a, c))
    assert int(left) == int(right)


@settings(max_examples=50, deadline=None)
@given(a=elements.filter(lambda x: x != 0))
def test_inverse_is_multiplicative_inverse(a):
    field = PrimeField()
    assert int(field.mul(a, field.inv(a))) == 1
    assert field.scalar_inv(a) == int(field.inv(a))


def test_inverse_of_zero_raises(field):
    with pytest.raises(FieldError):
        field.inv(np.array([3, 0, 5]))
    with pytest.raises(FieldError):
        field.scalar_inv(0)


@settings(max_examples=30, deadline=None)
@given(a=elements, e=st.integers(min_value=0, max_value=200))
def test_power_matches_python_pow(a, e):
    field = PrimeField()
    assert int(field.power(a, e)) == pow(a, e, field.p)


def test_power_negative_exponent(field):
    a = 12345
    assert int(field.power(a, -1)) == field.scalar_inv(a)


@settings(max_examples=50, deadline=None)
@given(v=st.integers(min_value=-(DEFAULT_PRIME // 2), max_value=DEFAULT_PRIME // 2))
def test_signed_lift_roundtrip(v):
    field = PrimeField()
    assert int(field.to_signed(field.from_signed(v))) == v


def test_signed_constants(field):
    assert field.signed_max == field.p // 2
    assert field.signed_min == -(field.p // 2)
    assert field.half == field.p // 2


def test_uniform_in_range(field, nprng):
    sample = field.uniform((1000,), nprng)
    assert field.is_canonical(sample)
    nz = field.nonzero_uniform((1000,), nprng)
    assert np.all(nz > 0)


def test_zeros_ones_eye(field):
    assert field.zeros((2, 2)).sum() == 0
    assert field.ones((3,)).sum() == 3
    assert np.array_equal(field.eye(2), np.eye(2, dtype=np.int64))


def test_square(field):
    assert int(field.square(7)) == 49
