"""Tests for Algorithm 2 (large-batch sealed aggregation)."""

import numpy as np
import pytest

from repro.enclave import Enclave
from repro.errors import ConfigurationError
from repro.runtime import LargeBatchAggregator


@pytest.fixture()
def enclave():
    return Enclave(seed=1)


def test_aggregate_equals_direct_sum(enclave, nprng):
    agg = LargeBatchAggregator(enclave)
    updates = [nprng.normal(size=(6, 4)) for _ in range(5)]
    for i, u in enumerate(updates):
        agg.add_update(f"vb{i}", u)
    total = agg.aggregate([f"vb{i}" for i in range(5)])
    assert np.allclose(total, np.sum(updates, axis=0))


@pytest.mark.parametrize("n_shards", [1, 3, 8])
def test_sharding_preserves_result(enclave, nprng, n_shards):
    agg = LargeBatchAggregator(enclave, n_shards=n_shards)
    updates = [nprng.normal(size=(37,)) for _ in range(3)]
    for i, u in enumerate(updates):
        agg.add_update(f"vb{i}", u)
    total = agg.aggregate([f"vb{i}" for i in range(3)])
    assert np.allclose(total, np.sum(updates, axis=0))


def test_eviction_goes_through_untrusted_store(enclave, nprng):
    agg = LargeBatchAggregator(enclave, n_shards=2)
    agg.add_update("vb0", nprng.normal(size=(16,)))
    assert len(enclave.untrusted_store.keys()) == 2
    assert enclave.ledger.sealed_bytes > 0
    agg.aggregate(["vb0"])
    assert enclave.untrusted_store.keys() == []
    assert enclave.ledger.unsealed_bytes > 0


def test_pending_keys(enclave, nprng):
    agg = LargeBatchAggregator(enclave)
    agg.add_update("a", nprng.normal(size=(4,)))
    assert agg.pending_keys() == ["a"]
    agg.aggregate(["a"])
    assert agg.pending_keys() == []


def test_duplicate_key_rejected(enclave, nprng):
    agg = LargeBatchAggregator(enclave)
    agg.add_update("a", nprng.normal(size=(4,)))
    with pytest.raises(ConfigurationError):
        agg.add_update("a", nprng.normal(size=(4,)))


def test_unknown_key_rejected(enclave):
    agg = LargeBatchAggregator(enclave)
    with pytest.raises(ConfigurationError):
        agg.aggregate(["missing"])
    with pytest.raises(ConfigurationError):
        agg.aggregate([])


def test_shape_mismatch_rejected(enclave, nprng):
    agg = LargeBatchAggregator(enclave)
    agg.add_update("a", nprng.normal(size=(4,)))
    agg.add_update("b", nprng.normal(size=(5,)))
    with pytest.raises(ConfigurationError):
        agg.aggregate(["a", "b"])


def test_invalid_shards():
    with pytest.raises(ConfigurationError):
        LargeBatchAggregator(Enclave(seed=0), n_shards=0)


def test_tampered_evicted_update_detected(enclave, nprng):
    """An adversary flipping bits in an evicted ▽W_v is caught on reload."""
    from repro.errors import SealingError

    agg = LargeBatchAggregator(enclave)
    agg.add_update("vb0", nprng.normal(size=(8,)))
    enclave.untrusted_store.tamper("vb0/shard0")
    with pytest.raises(SealingError):
        agg.aggregate(["vb0"])
