"""Tests for the central-DP extension (clip + noise inside the enclave)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import DpConfig, GradientPrivatizer, PrivacyLedger


def test_config_validation():
    with pytest.raises(ConfigurationError):
        DpConfig(clip_norm=0)
    with pytest.raises(ConfigurationError):
        DpConfig(noise_multiplier=0)
    with pytest.raises(ConfigurationError):
        DpConfig(delta=1.0)


def test_clip_leaves_small_updates_alone(nprng):
    priv = GradientPrivatizer(DpConfig(clip_norm=10.0), nprng)
    update = np.array([0.3, -0.4])  # norm 0.5
    assert np.array_equal(priv.clip(update), update)


def test_clip_scales_large_updates_to_bound(nprng):
    priv = GradientPrivatizer(DpConfig(clip_norm=1.0), nprng)
    update = np.array([3.0, 4.0])  # norm 5
    clipped = priv.clip(update)
    assert np.linalg.norm(clipped) == pytest.approx(1.0)
    # Direction preserved.
    assert np.allclose(clipped / np.linalg.norm(clipped), update / 5.0)


def test_clip_zero_update(nprng):
    priv = GradientPrivatizer(DpConfig(), nprng)
    assert np.array_equal(priv.clip(np.zeros(4)), np.zeros(4))


def test_privatize_adds_calibrated_noise():
    cfg = DpConfig(clip_norm=1.0, noise_multiplier=2.0)
    priv = GradientPrivatizer(cfg, np.random.default_rng(0))
    update = np.zeros(50_000)
    noised = priv.privatize(update)
    # Empirical std ~ sigma * C = 2.0.
    assert np.std(noised) == pytest.approx(2.0, rel=0.05)
    assert priv.ledger.steps == 1


def test_privatize_named_preserves_shapes_and_accounts_once(nprng):
    priv = GradientPrivatizer(DpConfig(), nprng)
    updates = {"conv/w": nprng.normal(size=(2, 3)), "dense/b": nprng.normal(size=(5,))}
    out = priv.privatize_named(updates)
    assert out["conv/w"].shape == (2, 3)
    assert out["dense/b"].shape == (5,)
    assert priv.ledger.steps == 1
    with pytest.raises(ConfigurationError):
        priv.privatize_named({})


def test_joint_clipping_over_named_updates():
    cfg = DpConfig(clip_norm=1.0, noise_multiplier=1e-9)  # ~no noise
    priv = GradientPrivatizer(cfg, np.random.default_rng(0))
    updates = {"a": np.array([3.0]), "b": np.array([4.0])}  # joint norm 5
    out = priv.privatize_named(updates)
    joint = np.concatenate([out["a"], out["b"]])
    assert np.linalg.norm(joint) == pytest.approx(1.0, rel=1e-3)


def test_ledger_composition():
    cfg = DpConfig(noise_multiplier=1.0, delta=1e-5)
    ledger = PrivacyLedger(cfg)
    assert ledger.epsilon_basic == 0.0
    assert ledger.epsilon_advanced() == 0.0
    for _ in range(100):
        ledger.record_release()
    eps_step = cfg.epsilon_per_step()
    assert ledger.epsilon_basic == pytest.approx(100 * eps_step)
    # Advanced composition beats basic for many steps at these parameters...
    # only when eps_step is small; verify the sqrt-k term behaves.
    assert ledger.epsilon_advanced(1e-6) > 0
    with pytest.raises(ConfigurationError):
        ledger.epsilon_advanced(2.0)


def test_more_noise_means_lower_epsilon():
    quiet = DpConfig(noise_multiplier=0.5)
    loud = DpConfig(noise_multiplier=4.0)
    assert loud.epsilon_per_step() < quiet.epsilon_per_step()


def test_dp_on_top_of_masked_training(nprng):
    """The composition the paper suggests: DarKnight computes the aggregate
    privately; the enclave privatises it before release."""
    from repro.models import build_mini_vgg
    from repro.runtime import DarKnightBackend, DarKnightConfig

    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=4, rng=nprng, width=8)
    backend = DarKnightBackend(DarKnightConfig(virtual_batch_size=2, seed=0))
    x = nprng.normal(size=(2, 3, 8, 8))
    net.forward(x, backend, training=True)
    net.backward(nprng.normal(size=(2, 4)) * 0.1, backend)
    raw_updates = {
        f"{layer.name}/{name}": grad
        for layer, _, _ in net.parameters()
        for name, grad in layer.grads.items()
    }
    priv = GradientPrivatizer(DpConfig(clip_norm=1.0, noise_multiplier=1.0), nprng)
    released = priv.privatize_named(raw_updates)
    assert set(released) == set(raw_updates)
    assert priv.ledger.steps == 1
    # The released updates are *not* the raw ones (noise was added).
    assert any(
        not np.allclose(released[k], raw_updates[k]) for k in released
    )
    backend.end_batch()
