"""Tests for the Enclave runtime object."""

import numpy as np
import pytest

from repro.enclave import Enclave, EpcModel, measure_enclave
from repro.errors import EnclaveError

MB = 1024 * 1024


@pytest.fixture()
def enclave():
    return Enclave(code_identity="test-enclave", seed=5)


def test_measurement_and_quote(enclave):
    quote = enclave.quote(report_data=b"hello")
    assert quote.measurement == measure_enclave("test-enclave")
    assert enclave.verify_peer_quote(quote, measure_enclave("test-enclave"))


def test_ledger_tracks_boundary_crossings(enclave):
    enclave.ecall("provision", nbytes_in=100)
    enclave.ocall("result", nbytes_out=50)
    assert enclave.ledger.ecalls == 1
    assert enclave.ledger.ocalls == 1
    assert enclave.ledger.bytes_in == 100
    assert enclave.ledger.bytes_out == 50
    assert enclave.ledger.op_counts["ecall:provision"] == 1


def test_record_compute(enclave):
    enclave.record_compute("encode", 1000)
    enclave.record_compute("encode", 500)
    assert enclave.ledger.op_counts["encode"] == 2
    assert enclave.ledger.op_bytes["encode"] == 1500


def test_allocated_context_manager(enclave):
    with enclave.allocated("buf", 2 * MB):
        assert enclave.epc.resident_bytes == 2 * MB
    assert enclave.epc.resident_bytes == 0


def test_track_and_release_array(enclave):
    arr = np.zeros(1024, dtype=np.float64)
    enclave.track_array("acts", arr)
    assert enclave.epc.resident_bytes == arr.nbytes
    enclave.release("acts")
    assert enclave.epc.resident_bytes == 0


def test_seal_evict_reload_roundtrip(enclave, nprng):
    grads = nprng.normal(size=(64,))
    enclave.seal_and_evict("vb0", grads, label=b"grad")
    assert enclave.ledger.sealed_bytes > 0
    assert enclave.ledger.ocalls == 1
    back = enclave.reload_and_unseal("vb0")
    assert np.array_equal(back, grads)
    assert enclave.ledger.unsealed_bytes > 0
    enclave.drop_evicted("vb0")
    assert enclave.untrusted_store.keys() == []


def test_require_fits(enclave):
    enclave.require_fits(1 * MB, "small buffer")  # fine
    with pytest.raises(EnclaveError, match="virtual batch"):
        enclave.require_fits(200 * MB, "huge buffer")


def test_custom_epc(nprng):
    enclave = Enclave(epc=EpcModel(usable_bytes=MB), seed=1)
    with pytest.raises(EnclaveError):
        enclave.require_fits(2 * MB, "buffer")


def test_rng_is_seeded():
    a = Enclave(seed=7).rng.uniform((8,))
    b = Enclave(seed=7).rng.uniform((8,))
    assert np.array_equal(a, b)
