"""The offline/online split: mask streams, weight cache, scratch buffers.

The load-bearing property everywhere is **bit-identity**: precompute mode
may change *when* work happens (pregenerated masks, cached weight
encodings, recycled scratch buffers) but never the bits of any response.
These tests pin that across the pool's hit/miss/exhaustion paths, across
``pipeline_depth x num_shards x partition`` deployments, and across the
cache-invalidation edges (elastic membership change, pipeline-group
rebuild) — plus the steady-state acceptance bar: a warmed-up flush
window generates no inline masks and re-stages no weights.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.fieldmath import PrimeField
from repro.nn import Dense, ReLU, Sequential
from repro.precompute import MaskStreamPool, ScratchPool, enable_scratch
from repro.runtime import DarKnightConfig
from repro.serving import PrivateInferenceServer, ServingConfig, synthetic_trace
from repro.serving.requests import PendingRequest, ScheduledBatch
from repro.serving.slo import build_slo_policy

FIELD = PrimeField()
SHAPE = (3, 8, 8)


def _tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def _serve(precompute, trace, *, num_shards=1, partition="replicated",
           pipeline_depth=1, seed=7):
    dk = DarKnightConfig(
        virtual_batch_size=4,
        seed=seed,
        num_shards=num_shards,
        pipeline_depth=pipeline_depth,
        precompute=precompute,
    )
    config = ServingConfig(darknight=dk, partition=partition, queue_capacity=512)
    server = PrivateInferenceServer(_tiny_net(), config)
    return server, server.serve_trace(trace)


def _logits(report):
    return np.stack(
        [o.logits for o in sorted(report.completed, key=lambda o: o.request_id)]
    )


# ----------------------------------------------------------------------
# MaskStreamPool: counter-based bit-identity
# ----------------------------------------------------------------------
def test_pooled_and_inline_draws_are_bit_identical():
    """A pooled sequence equals an all-inline one, draw for draw."""
    pooled = MaskStreamPool(FIELD, base_key=123)
    inline = MaskStreamPool(FIELD, base_key=123)
    # Streams register on first draw; refills before that are no-ops.
    assert pooled.refill_one() == 0
    first, registered = pooled.draw(SHAPE, 4, 1)
    assert not registered
    assert np.array_equal(first, inline.draw(SHAPE, 4, 1)[0])
    for _ in range(6):
        assert pooled.refill_one() > 0
    for i in range(6):
        a, was_pooled = pooled.draw(SHAPE, 4, 1)
        b, was_inline = inline.draw(SHAPE, 4, 1)
        assert was_pooled and not was_inline
        assert np.array_equal(a, b), f"draw {i} diverged"
    assert pooled.hits == 6 and inline.misses == 7


def test_interleaved_refills_never_reorder_or_double_draw():
    """Refills landing between draws hand out exactly the counters an
    all-inline pool would have generated — no skip, no repeat."""
    mixed = MaskStreamPool(FIELD, base_key=9)
    reference = MaskStreamPool(FIELD, base_key=9)
    drawn = []
    for i in range(10):
        if i % 3 == 0:
            mixed.refill_one()
        drawn.append(mixed.draw(SHAPE, 4, 2)[0])
    for i, tensor in enumerate(drawn):
        assert np.array_equal(tensor, reference.draw(SHAPE, 4, 2)[0]), i
    assert mixed.hits + mixed.misses == 10


def test_pool_exhaustion_falls_back_inline_without_deadlock():
    """Draining the pool past its refills degrades to inline misses that
    still carry the right counters (and never blocks)."""
    pool = MaskStreamPool(FIELD, base_key=5, stream_capacity=2)
    reference = MaskStreamPool(FIELD, base_key=5)
    pool.draw(SHAPE, 4, 1)  # register the stream (inline miss)
    reference.draw(SHAPE, 4, 1)
    assert pool.refill_one() > 0 and pool.refill_one() > 0
    assert pool.refill_one() == 0  # capacity cap: refills stop, no deadlock
    flags = []
    for _ in range(5):
        tensor, was_pooled = pool.draw(SHAPE, 4, 1)
        flags.append(was_pooled)
        assert np.array_equal(tensor, reference.draw(SHAPE, 4, 1)[0])
    assert flags == [True, True, False, False, False]
    assert pool.hits == 2 and pool.misses == 4


def test_max_bytes_bounds_refill_but_never_draws():
    """A pool too small for even one tensor refuses refills (pending 0)
    yet serves every draw inline."""
    pool = MaskStreamPool(FIELD, base_key=5, max_bytes=1)
    reference = MaskStreamPool(FIELD, base_key=5)
    first, was_pooled = pool.draw(SHAPE, 4, 1)  # registers the stream
    assert not was_pooled
    assert np.array_equal(first, reference.draw(SHAPE, 4, 1)[0])
    assert pool.pending_bytes() == 0 and pool.refill_one() == 0
    assert np.array_equal(
        pool.draw(SHAPE, 4, 1)[0], reference.draw(SHAPE, 4, 1)[0]
    )


def test_distinct_keys_use_independent_streams():
    pool = MaskStreamPool(FIELD, base_key=1)
    a = pool.draw(SHAPE, 4, 1)[0]
    b = pool.draw(SHAPE, 4, 2)[0]
    assert a.shape == (1,) + SHAPE and b.shape == (2,) + SHAPE
    assert pool.snapshot()["streams"] == 2


def test_pool_snapshot_is_strict_json_before_first_draw():
    pool = MaskStreamPool(FIELD, base_key=0)
    snap = pool.snapshot()
    assert snap["hit_rate"] is None and snap["occupancy"] is None
    json.dumps(snap, allow_nan=False)


# ----------------------------------------------------------------------
# ScratchPool: value transparency
# ----------------------------------------------------------------------
def test_scratch_pool_reuses_one_buffer_per_site():
    pool = ScratchPool()
    a = pool.get("t", (4, 4), np.float64)
    b = pool.get("t", (4, 4), np.float64)
    assert a is b
    assert pool.get("other", (4, 4), np.float64) is not a
    assert pool.snapshot() == {
        "entries": 2, "bytes": 256, "reuses": 1, "allocations": 2,
    }


def test_scratch_pool_resets_on_shape_churn():
    pool = ScratchPool(max_entries=2)
    pool.get("t", (1,), np.int64)
    pool.get("t", (2,), np.int64)
    pool.get("t", (3,), np.int64)  # churn past capacity: pool resets
    assert pool.snapshot()["entries"] == 1


def test_scratch_path_is_value_transparent_for_encode_decode():
    from repro.fieldmath import FieldRng, use_backend
    from repro.masking import CoefficientSet, ForwardDecoder

    rng = FieldRng(FIELD, seed=3)
    coeffs = CoefficientSet.generate(rng, k=4, m=1, extra_shares=1)
    decoder = ForwardDecoder(coeffs)
    outputs = rng.uniform((6, 3, 16, 16))
    with use_backend("limb"):
        plain = decoder.decode(outputs)
        previous = enable_scratch(True)
        try:
            pooled = decoder.decode(outputs)
            again = decoder.decode(outputs)  # second pass hits warm buffers
        finally:
            enable_scratch(previous)
    assert np.array_equal(plain, pooled)
    assert np.array_equal(plain, again)


# ----------------------------------------------------------------------
# end-to-end bit-identity across deployments
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "pipeline_depth,num_shards,partition",
    [
        (1, 1, "replicated"),
        (2, 1, "replicated"),
        (1, 2, "replicated"),
        (2, 2, "replicated"),
        (1, 2, "layered:2"),
        (2, 2, "layered:2"),
    ],
)
def test_precompute_serves_bit_identical_logits(
    pipeline_depth, num_shards, partition
):
    trace = synthetic_trace(24, (16,), n_tenants=3, seed=2)
    _, off = _serve(False, trace, num_shards=num_shards,
                    partition=partition, pipeline_depth=pipeline_depth)
    _, on = _serve(True, trace, num_shards=num_shards,
                   partition=partition, pipeline_depth=pipeline_depth)
    assert len(off.completed) == len(on.completed) == 24
    assert np.array_equal(_logits(off), _logits(on))
    assert on.precompute is not None and off.precompute is None


# ----------------------------------------------------------------------
# weight-cache invalidation edges
# ----------------------------------------------------------------------
def _membership_churn(server):
    """Serve / provision / serve / decommission / serve; returns logits."""
    out = []
    for phase, trace_seed in enumerate((11, 12, 13)):
        trace = synthetic_trace(16, (16,), n_tenants=3, seed=trace_seed)
        out.append(_logits(server.serve_trace(trace)))
        if phase == 0:
            server.provision_shard(now=0.0)
        elif phase == 1:
            server.decommission_shard(shard_id=0, now=0.0)
    return out


def test_weight_cache_invalidates_on_membership_change():
    """Provision/retire clears every live backend's weight cache, and the
    post-churn deployment serves the same bits as one that never cached."""
    dk = DarKnightConfig(virtual_batch_size=4, seed=7, num_shards=2)
    on = PrivateInferenceServer(
        _tiny_net(),
        ServingConfig(
            darknight=dataclasses.replace(dk, precompute=True),
            queue_capacity=512,
        ),
    )
    trace = synthetic_trace(16, (16,), n_tenants=3, seed=11)
    on.serve_trace(trace)
    warmed = [s.backend.precompute_snapshot()["cached_layers"]
              for s in on._live_shards()]
    assert any(layers > 0 for layers in warmed)
    on.provision_shard(now=0.0)
    assert all(
        s.backend.precompute_snapshot()["cached_layers"] == 0
        for s in on._live_shards()
    )

    # Full churn sequence, both modes, phase-for-phase identical bits.
    fresh = {
        precompute: PrivateInferenceServer(
            _tiny_net(),
            ServingConfig(
                darknight=dataclasses.replace(dk, precompute=precompute),
                queue_capacity=512,
            ),
        )
        for precompute in (False, True)
    }
    phases_off = _membership_churn(fresh[False])
    phases_on = _membership_churn(fresh[True])
    for a, b in zip(phases_off, phases_on):
        assert np.array_equal(a, b)


def test_weight_cache_invalidates_on_group_rebuild():
    """Rebuilding a ``layered:N`` pipeline group clears member caches and
    the rebuilt deployment keeps serving bit-identical logits."""
    from repro.sharding.partition import PipelineGroup

    trace = synthetic_trace(16, (16,), n_tenants=3, seed=4)
    on, first_on = _serve(True, trace, num_shards=2, partition="layered:2")
    off, first_off = _serve(False, trace, num_shards=2, partition="layered:2")
    assert np.array_equal(_logits(first_on), _logits(first_off))
    assert any(
        s.backend.precompute_snapshot()["cached_layers"] > 0
        for s in on.shards
    )
    rebuilt = PipelineGroup(
        0, on.shards, on.stage_ranges, on.mesh, link=on.link, seed=7
    )
    assert rebuilt.healthy
    assert all(
        s.backend.precompute_snapshot()["cached_layers"] == 0
        for s in on.shards
    )
    # The rebuild changed *where* encodings live, not what gets served:
    # both servers (same history, rebuild a no-op without a cache) keep
    # serving the same bits afterwards.
    second_trace = synthetic_trace(16, (16,), n_tenants=3, seed=5)
    second_on = on.serve_trace(second_trace)
    second_off = off.serve_trace(second_trace)
    assert np.array_equal(_logits(second_on), _logits(second_off))


# ----------------------------------------------------------------------
# steady-state acceptance: zero inline masks, zero re-staging
# ----------------------------------------------------------------------
def test_steady_state_windows_do_no_offline_work():
    """After warmup every mask comes from the pool and every weight
    encoding from the cache — counted via backend ``record_compute``
    events, which fire once per mask draw / weight stage."""
    trace = synthetic_trace(40, (16,), n_tenants=3, seed=3)
    server, report = _serve(True, trace)
    assert len(report.completed) == 40
    counts = dict(server.shards[0].enclave.ledger.op_counts)
    n_linear_layers = 2  # the tiny net's two Dense layers
    assert counts.get("stage_weights") == n_linear_layers
    assert counts.get("reuse_weights", 0) > 0
    # Inline generation only ever happens before the refill engine has
    # seen a stream (the cold start); one miss per stream at most.
    streams = server.shards[0].backend.precompute_snapshot()["streams"]
    assert counts.get("mask_inline", 0) <= streams
    assert counts.get("mask_pool_hit", 0) > 0

    # A second trace on the warmed server does *zero* offline work inline.
    before_inline = counts.get("mask_inline", 0)
    before_staged = counts["stage_weights"]
    server.serve_trace(synthetic_trace(24, (16,), n_tenants=3, seed=6))
    counts = server.shards[0].enclave.ledger.op_counts
    assert counts.get("mask_inline", 0) == before_inline
    assert counts["stage_weights"] == before_staged


# ----------------------------------------------------------------------
# failover retries inherit the remaining SLO budget (not the flush window)
# ----------------------------------------------------------------------
def _pending(request_id, tenant, arrival):
    return PendingRequest(
        request_id=request_id,
        tenant=tenant,
        x=np.zeros((16,)),
        arrival_time=arrival,
        enqueue_time=arrival,
    )


def test_failover_retry_inherits_remaining_slo_budget():
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=2)
    slo = build_slo_policy(
        {"premium": 0.050, "standard": 0.200},
        {"t0": "premium", "t1": "standard"},
    )
    config = ServingConfig(darknight=dk, queue_capacity=64, slo=slo)
    server = PrivateInferenceServer(_tiny_net(), config)
    batch = ScheduledBatch(
        batch_id=7,
        requests=[_pending(0, "t0", arrival=0.010), _pending(1, "t1", 0.012)],
        flush_time=0.020,
        slots=4,
        shard_id=0,
    )
    retries = server.pool._reroute(batch, failed_shard=0, not_before=0.030)
    assert retries  # at least one survivor batch
    for retry in retries:
        expected = min(
            req.arrival_time + slo.budget_for(req.tenant)
            for req in retry.requests
        )
        assert retry.deadline == pytest.approx(expected)
        # The worker honours the stamp instead of re-deriving anything
        # from the (stale) flush window.
        assert server.pool._batch_deadline(retry) == pytest.approx(expected)
    tightest = min(r.deadline for r in retries)
    assert tightest == pytest.approx(0.010 + 0.050)


def test_batch_deadline_prefers_the_explicit_stamp():
    dk = DarKnightConfig(virtual_batch_size=4, seed=0)
    config = ServingConfig(darknight=dk, queue_capacity=64)
    server = PrivateInferenceServer(_tiny_net(), config)
    stamped = ScheduledBatch(
        batch_id=1, requests=[_pending(0, "t0", 0.0)], deadline=0.123
    )
    assert server.pool._batch_deadline(stamped) == pytest.approx(0.123)


def test_reroute_without_slo_leaves_deadline_unset():
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=2)
    server = PrivateInferenceServer(
        _tiny_net(), ServingConfig(darknight=dk, queue_capacity=64)
    )
    batch = ScheduledBatch(
        batch_id=1, requests=[_pending(0, "t0", 0.0)], shard_id=0
    )
    (retry,) = server.pool._reroute(batch, failed_shard=0, not_before=0.01)
    assert retry.deadline is None


# ----------------------------------------------------------------------
# telemetry: strict JSON, config surface
# ----------------------------------------------------------------------
def test_metrics_snapshot_is_strict_json_when_pool_never_drawn():
    """A precompute server that served nothing must still snapshot to
    strict JSON — no ``inf``/``NaN`` from empty pool or cache stats."""
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, precompute=True)
    server = PrivateInferenceServer(
        _tiny_net(), ServingConfig(darknight=dk, queue_capacity=16)
    )
    report = server.serve_trace([])
    snap = report.metrics.snapshot()
    text = json.dumps(snap, allow_nan=False)
    parsed = json.loads(text)
    assert parsed["precompute"]["hit_rate"] is None
    assert parsed["precompute"]["weights_staged"] == 0


def test_precompute_report_line_renders_after_serving():
    trace = synthetic_trace(16, (16,), n_tenants=2, seed=1)
    _, report = _serve(True, trace)
    assert report.precompute is not None
    assert report.precompute["hit_rate"] is not None
    assert "precompute: pool hit rate" in report.render()
    json.dumps(report.metrics.snapshot(), allow_nan=False)


def test_serving_config_round_trips_precompute():
    config = ServingConfig(precompute=True)
    data = config.to_dict()
    assert data["precompute"] is True
    assert ServingConfig.from_dict(data).precompute is True
    assert ServingConfig.from_dict(ServingConfig().to_dict()).precompute is False
