"""Tests for architecture specs: published counts and builder consistency."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import (
    SpecBuilder,
    build_mini_mobilenet,
    build_mini_resnet,
    build_mini_vgg,
    mini_mobilenet_spec,
    mini_resnet_spec,
    mini_vgg_spec,
    mobilenet_v1_spec,
    mobilenet_v2_spec,
    resnet50_spec,
    vgg16_spec,
)


def test_vgg16_published_counts():
    spec = vgg16_spec()
    assert spec.n_params == pytest.approx(138.36e6, rel=0.01)
    assert spec.linear_macs_forward() == pytest.approx(15.47e9, rel=0.01)


def test_resnet50_published_counts():
    spec = resnet50_spec()
    assert spec.n_params == pytest.approx(25.6e6, rel=0.02)
    assert spec.linear_macs_forward() == pytest.approx(4.1e9, rel=0.03)


def test_mobilenet_v1_published_counts():
    spec = mobilenet_v1_spec()
    assert spec.n_params == pytest.approx(4.2e6, rel=0.03)
    assert spec.linear_macs_forward() == pytest.approx(0.57e9, rel=0.03)


def test_mobilenet_v2_published_counts():
    spec = mobilenet_v2_spec()
    assert spec.n_params == pytest.approx(3.5e6, rel=0.03)
    assert spec.linear_macs_forward() == pytest.approx(0.3e9, rel=0.05)


def test_backward_macs_double_forward():
    spec = vgg16_spec()
    assert spec.linear_macs_backward() == 2 * spec.linear_macs_forward()


def test_spec_queries():
    spec = vgg16_spec()
    assert spec.elementwise_ops(frozenset({"relu"})) > 0
    assert spec.elementwise_ops(frozenset({"batchnorm"})) == 0  # VGG has no BN
    assert resnet50_spec().elementwise_ops(frozenset({"batchnorm"})) > 0
    assert spec.activation_bytes() > spec.max_activation_bytes() > 0
    assert len(spec.layers_of_kind("conv")) == 13
    assert len(spec.layers_of_kind("dense")) == 3
    assert "VGG16" in spec.summary()


def test_input_resolution_scales_macs():
    big = vgg16_spec(input_size=224)
    small = vgg16_spec(input_size=32)
    assert big.linear_macs_forward() > small.linear_macs_forward()
    # Dense layers differ (7x7 vs 1x1 feature maps), params differ too.
    assert big.n_params != small.n_params


def test_empty_spec_rejected():
    with pytest.raises(ConfigurationError):
        SpecBuilder("empty", (3, 8, 8)).build()


@pytest.mark.parametrize(
    "builder,spec_fn",
    [
        (build_mini_vgg, mini_vgg_spec),
        (build_mini_resnet, mini_resnet_spec),
        (build_mini_mobilenet, mini_mobilenet_spec),
    ],
)
def test_mini_spec_matches_runnable_params(builder, spec_fn, nprng):
    """The counted spec and the runnable network agree on parameter counts."""
    net = builder(input_shape=(3, 16, 16), n_classes=10, rng=nprng, width=16)
    spec = spec_fn(input_shape=(3, 16, 16), n_classes=10, width=16)
    assert net.n_params == spec.n_params


@pytest.mark.parametrize(
    "builder", [build_mini_vgg, build_mini_resnet, build_mini_mobilenet]
)
def test_mini_models_run_forward_backward(builder, nprng):
    from repro.nn import SoftmaxCrossEntropy

    net = builder(input_shape=(3, 16, 16), n_classes=10, rng=nprng, width=8)
    x = nprng.normal(size=(4, 3, 16, 16))
    y = nprng.integers(0, 10, 4)
    loss = SoftmaxCrossEntropy()
    value = loss.forward(net.forward(x), y)
    assert np.isfinite(value)
    net.backward(loss.backward())
    grads = [g for layer, _, _ in net.parameters() for g in layer.grads.values()]
    assert grads and all(np.all(np.isfinite(g)) for g in grads)
