"""Elastic shard autoscaling: dynamic membership, drain, and the loop.

Covers the load-bearing properties of the elastic serving stack:

* membership mechanics — the router, mesh, scheduler, worker pool, and
  session manager all grow and shrink without disturbing work they
  already own;
* drain-before-kill — a decommissioned shard flushes (and audit-commits)
  its queued windows, migrates its sessions over still-verified mesh
  links, and only then leaves;
* correctness — logits are bit-identical under *any* membership history
  (per-sample normalization makes responses independent of routing);
* the control loop — hysteresis and cooldown produce rare, bounded
  membership changes that never cross the configured min/max.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShardError
from repro.nn import Dense, PlainBackend, ReLU, Sequential
from repro.runtime import DarKnightConfig
from repro.serving import (
    AutoscaleConfig,
    PrivateInferenceServer,
    RequestQueue,
    ServingConfig,
    ShardAutoscaler,
    phased_trace,
    synthetic_trace,
)
from repro.serving.autoscale import ACTION_SCALE_IN, ACTION_SCALE_OUT
from repro.serving.requests import PendingRequest
from repro.sharding import ShardRouter


def _tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def _server(num_shards=1, autoscale=None, **kwargs):
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=num_shards)
    config = ServingConfig(
        darknight=dk, queue_capacity=512, autoscale=autoscale, **kwargs
    )
    return PrivateInferenceServer(_tiny_net(), config)


# ----------------------------------------------------------------------
# router membership
# ----------------------------------------------------------------------
def test_router_add_shard_assigns_next_id_and_repins_boundedly():
    router = ShardRouter(2)
    tenants = [f"t{i}" for i in range(20)]
    before = {t: router.shard_for(t) for t in tenants}
    new_id, remap = router.add_shard()
    assert new_id == 2
    assert router.n_shards == 3
    # Every re-pinned tenant landed on the new shard, and the move set is
    # bounded (consistent hashing moves ~1/n of the keys, not all).
    assert all(shard == new_id for shard in remap.values())
    assert 0 < len(remap) < len(tenants)
    for t in tenants:
        assert router.shard_for(t) == (remap.get(t, before[t]))


def test_router_drain_blocks_new_placements_but_keeps_existing_pins():
    router = ShardRouter(3)
    pinned = {f"t{i}": router.shard_for(f"t{i}") for i in range(12)}
    router.begin_drain(1)
    assert router.is_draining(1)
    # Existing pins survive the drain window...
    for t, shard in pinned.items():
        assert router.shard_for(t) == shard
    # ...but fresh tenants never land on the draining shard.
    for i in range(40):
        assert router.shard_for(f"fresh{i}") != 1


def test_router_drain_rejects_unknown_and_last_shard():
    router = ShardRouter(1)
    with pytest.raises(ConfigurationError):
        router.begin_drain(7)
    with pytest.raises(ShardError):
        router.begin_drain(0)


def test_router_remove_shard_repins_tenants_and_retires_the_id():
    router = ShardRouter(3)
    tenants = [f"t{i}" for i in range(24)]
    for t in tenants:
        router.shard_for(t)
    victims = [t for t in tenants if router.shard_for(t) == 1]
    remap = router.remove_shard(1)
    assert router.is_retired(1)
    assert sorted(remap) == sorted(victims)
    for t in tenants:
        assert router.shard_for(t) != 1
    # The id is never reused: the next join gets a fresh id.
    new_id, _ = router.add_shard()
    assert new_id == 3
    # Removing again is an idempotent no-op.
    assert router.remove_shard(1) == {}


def test_router_remove_shard_refuses_last_and_failed_shards():
    router = ShardRouter(2)
    with pytest.raises(ConfigurationError):
        router.remove_shard(9)
    router.fail_shard(0)
    with pytest.raises(ShardError):
        router.remove_shard(0)  # failure accounting, not a drain
    with pytest.raises(ShardError):
        router.remove_shard(1)  # would leave no serving shard


# ----------------------------------------------------------------------
# mesh membership
# ----------------------------------------------------------------------
def test_mesh_extend_attests_only_the_new_links():
    server = _server(num_shards=3)
    before = server.mesh.handshakes
    new_id = server.provision_shard(now=0.0)
    # Incremental join: two handshake directions per live peer — not a
    # full n*(n-1) re-establishment.
    assert server.mesh.handshakes - before == 2 * 3
    for peer in range(3):
        assert server.mesh.verified(new_id, peer)


def test_mesh_retire_keeps_links_so_drains_can_still_migrate():
    server = _server(num_shards=3)
    server.decommission_shard(shard_id=1, now=0.0)
    assert all(s.shard_id != 1 for s in server.mesh.shards)
    # The retired shard's links survive: inclusion proofs and any
    # in-flight drain migration still verify.
    assert server.mesh.verified(0, 1)
    with pytest.raises(ConfigurationError):
        server.mesh.extend(server.shards[0])  # duplicate member


# ----------------------------------------------------------------------
# queue re-homing
# ----------------------------------------------------------------------
def test_queue_extract_and_absorb_move_admitted_work_without_shedding():
    src, dst = RequestQueue(8), RequestQueue(8)
    for i in range(4):
        tenant = "a" if i % 2 == 0 else "b"
        src.push(PendingRequest(i, tenant, np.zeros(4), float(i), float(i)))
    moved = src.extract_tenant("a")
    assert [r.request_id for r in moved] == [0, 2]
    assert src.depth == 2 and src.depth_by_tenant() == {"b": 2}
    dst.absorb(moved)
    assert dst.depth == 2
    assert [r.request_id for r in dst.pop_fair(4)] == [0, 2]
    # Re-homing is not admission: nothing was shed or counted as pushed.
    assert dst.shed_count == 0
    assert src.extract_tenant("ghost") == []


# ----------------------------------------------------------------------
# the control loop (pure decision logic)
# ----------------------------------------------------------------------
def _cfg(**kwargs):
    defaults = dict(
        eval_interval=1.0,
        scale_out_cooldown=0.0,
        scale_in_cooldown=0.0,
        breaches_to_scale_out=2,
        breaches_to_scale_in=2,
    )
    defaults.update(kwargs)
    return AutoscaleConfig(**defaults)


def test_autoscaler_scales_out_after_a_streak_not_one_spike():
    asc = ShardAutoscaler(_cfg())
    high = {0: 50}
    action, _ = asc.evaluate(0.0, high, {0: 0.0})
    assert action is None  # streak of 1 < breaches_to_scale_out
    action, reason = asc.evaluate(1.0, high, {0: 0.0})
    assert action == ACTION_SCALE_OUT
    assert "overloaded" in reason


def test_autoscaler_cooldown_blocks_consecutive_actions():
    asc = ShardAutoscaler(_cfg(scale_out_cooldown=10.0))
    high = {0: 50}
    asc.evaluate(0.0, high, {0: 0.0})
    action, _ = asc.evaluate(1.0, high, {0: 0.0})
    assert action == ACTION_SCALE_OUT
    asc.record(action, 1, 2, 1.0, "test")
    # Still overloaded, but inside the cooldown window.
    asc.evaluate(2.0, {0: 50, 1: 50}, {0: 0.0, 1: 0.0})
    action, _ = asc.evaluate(3.0, {0: 50, 1: 50}, {0: 0.0, 1: 0.0})
    assert action is None
    action, _ = asc.evaluate(12.0, {0: 50, 1: 50}, {0: 0.0, 1: 0.0})
    assert action == ACTION_SCALE_OUT


def test_autoscaler_single_shard_never_scales_below_min():
    asc = ShardAutoscaler(_cfg(min_shards=1))
    for t in range(20):  # idle forever: depth 0, utilization 0
        action, _ = asc.evaluate(float(t), {0: 0}, {0: 0.0})
        assert action is None


def test_autoscaler_respects_max_shards():
    asc = ShardAutoscaler(_cfg(max_shards=2))
    depths = {0: 50, 1: 50}
    for t in range(10):
        action, _ = asc.evaluate(float(t), depths, {0: 0.0, 1: 0.0})
        assert action is None


def test_autoscaler_shard_seconds_and_peak_ledger():
    asc = ShardAutoscaler()
    asc.note_provisioned(0, 0.0)
    asc.note_provisioned(1, 2.0)
    asc.note_retired(1, 5.0)
    asc.note_provisioned(2, 5.0)
    assert asc.shard_seconds(10.0) == pytest.approx(10.0 + 3.0 + 5.0)
    # A retire and a provision at the same instant overlap: the peak
    # counts the join before the leave (the conservative reading).
    assert asc.peak_shards() == 3
    assert asc.live_shards() == [0, 2]
    snap = asc.snapshot(10.0)
    assert snap["peak_shards"] == 3 and snap["scale_outs"] == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(min_shards=0),
        dict(min_shards=3, max_shards=2),
        dict(eval_interval=0.0),
        dict(queue_low=5.0, queue_high=4.0),
        dict(utilization_low=0.9, utilization_high=0.8),
        dict(breaches_to_scale_out=0),
        dict(ewma_alpha=0.0),
        dict(attainment_floor=1.5),
    ],
)
def test_autoscale_config_rejects_invalid_combinations(kwargs):
    with pytest.raises(ConfigurationError):
        AutoscaleConfig(**kwargs)


# ----------------------------------------------------------------------
# server-level membership changes
# ----------------------------------------------------------------------
def test_provision_shard_joins_every_subsystem():
    server = _server(num_shards=2)
    new_id = server.provision_shard(now=0.0)
    assert new_id == 2
    assert len(server.shards) == 3
    assert server.router.n_shards == 3
    assert len(server.scheduler.shards) == 3
    assert new_id in server.pool.shards
    assert new_id in server.sessions.sessions_by_shard()
    assert server.autoscaler.live_shards() == [0, 1, 2]


def test_scripted_membership_history_serves_bit_identical_logits():
    """grow -> shrink -> grow, then serve: logits must match static."""
    trace = synthetic_trace(40, (16,), n_tenants=8, mean_interarrival=1e-4, seed=7)
    _, static_report = (lambda s: (s, s.serve_trace(trace)))(_server(num_shards=1))
    static = {o.request_id: o.logits for o in static_report.completed}

    server = _server(num_shards=1)
    server.provision_shard(now=0.0)      # grow: 1 -> 2
    server.provision_shard(now=0.0)      # grow: 2 -> 3
    server.decommission_shard(now=0.0)   # shrink: 3 -> 2
    server.provision_shard(now=0.0)      # grow again: 2 -> 3
    report = server.serve_trace(trace)
    assert len(report.completed) == 40
    assert all(o.ok for o in report.outcomes)
    for rid, logits in static.items():
        assert np.array_equal(logits, {o.request_id: o.logits for o in report.completed}[rid])


def test_decommission_mid_flush_completes_queued_work_and_commits_audit():
    """Scale-in with requests still queued on the victim: every one of
    them completes through the victim's own drain flush, and the flush
    windows land on the victim's audit chain before it retires."""
    from repro.serving import AuditConfig

    server = _server(num_shards=2, audit=AuditConfig())
    events = synthetic_trace(16, (16,), n_tenants=6, mean_interarrival=1e-4, seed=9)
    for e in events:
        server._admit(e, e.time)
    victim = max(range(2), key=lambda sid: server.queues[sid].depth)
    queued = server.queues[victim].depth
    assert queued > 0
    windows_before = server.audit.windows_committed

    vid = server.decommission_shard(shard_id=victim, now=1.0)

    assert vid == victim
    assert server.shards[victim].retired
    assert server.router.is_retired(victim)
    assert server.queues[victim].depth == 0
    # Every request queued on the victim completed through the drain
    # flush; the survivor's own queue is untouched.
    completed = [o for o in server._outcomes if o.ok]
    assert len(completed) == queued
    survivor = 1 - victim
    assert server.queues[survivor].depth == 16 - queued
    assert server.audit.windows_committed > windows_before
    # The retired shard's chain head stays published.
    assert victim in server.audit.chain_roots()
    assert server.audit.verify() == server.audit.windows_committed


def test_decommission_refuses_the_last_live_shard():
    server = _server(num_shards=1)
    with pytest.raises(ShardError):
        server.decommission_shard(shard_id=0, now=0.0)


def test_construction_errors_fire_before_any_shard_is_provisioned(monkeypatch):
    """An invalid injected-hardware combination must raise before the
    provisioning loop: a failed construction may never leak enclaves."""
    from repro.sharding.shard import EnclaveShard

    calls = []
    original = EnclaveShard.provision.__func__

    def counting(cls, *args, **kwargs):
        calls.append(args)
        return original(cls, *args, **kwargs)

    monkeypatch.setattr(EnclaveShard, "provision", classmethod(counting))
    sentinel = object()
    dk = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=2)
    with pytest.raises(ConfigurationError):
        PrivateInferenceServer(
            _tiny_net(), ServingConfig(darknight=dk), cluster=sentinel
        )
    # Elastic deployments may also never compose with injected hardware,
    # even when the *initial* count is 1.
    dk1 = DarKnightConfig(virtual_batch_size=4, seed=0, num_shards=1)
    with pytest.raises(ConfigurationError):
        PrivateInferenceServer(
            _tiny_net(),
            ServingConfig(darknight=dk1, autoscale=AutoscaleConfig(max_shards=2)),
            cluster=sentinel,
        )
    with pytest.raises(ConfigurationError):
        PrivateInferenceServer(
            _tiny_net(),
            ServingConfig(darknight=dk, shard_weights=(1.0,)),
        )
    assert calls == []


# ----------------------------------------------------------------------
# the loop end to end
# ----------------------------------------------------------------------
def _elastic_autoscale(**kwargs):
    defaults = dict(
        min_shards=1,
        max_shards=4,
        eval_interval=5e-4,
        scale_out_cooldown=1e-3,
        scale_in_cooldown=5e-3,
        queue_high=3.0,
        queue_low=0.5,
        breaches_to_scale_out=2,
        breaches_to_scale_in=4,
    )
    defaults.update(kwargs)
    return AutoscaleConfig(**defaults)


def test_autoscaling_phased_trace_grows_shrinks_and_stays_bit_identical():
    trace = phased_trace(
        [(60, 2e-5), (30, 2e-2), (60, 2e-5)], (16,), n_tenants=8, seed=11
    )
    elastic = _server(num_shards=1, autoscale=_elastic_autoscale())
    report = elastic.serve_trace(trace)

    assert len(report.completed) == 150
    assert all(o.ok for o in report.outcomes)  # zero membership casualties
    assert report.autoscale is not None
    assert report.autoscale["scale_outs"] >= 1
    assert report.autoscale["scale_ins"] >= 1
    assert 1 <= report.autoscale["peak_shards"] <= 4
    assert report.autoscale["shard_seconds"] > 0

    # Bit-identical to any static membership.
    static = _server(num_shards=2).serve_trace(trace)
    static_logits = {o.request_id: o.logits for o in static.completed}
    for o in report.completed:
        assert np.array_equal(o.logits, static_logits[o.request_id])


def test_autoscaler_never_leaves_the_configured_band():
    trace = phased_trace([(50, 2e-5), (30, 5e-3)], (16,), n_tenants=6, seed=13)
    server = _server(
        num_shards=1, autoscale=_elastic_autoscale(min_shards=1, max_shards=2)
    )
    report = server.serve_trace(trace)
    assert all(o.ok for o in report.outcomes)
    for event in server.autoscaler.events:
        assert 1 <= event.n_live <= 2
    assert len(server._live_shards()) >= 1


def test_scale_out_while_failover_retry_is_in_flight():
    """A shard dies mid-window under load heavy enough to also trigger a
    scale-out: the failover retry and the membership change coexist
    without losing or corrupting a single response."""
    n = 80
    trace = synthetic_trace(n, (16,), n_tenants=8, mean_interarrival=2e-5, seed=5)
    server = _server(
        num_shards=2,
        autoscale=_elastic_autoscale(min_shards=1, max_shards=4),
    )
    server.shards[1].fail_after(2)
    report = server.serve_trace(trace)

    assert len(report.completed) == n
    assert all(o.ok for o in report.outcomes)
    assert report.failovers == 1
    assert report.autoscale["scale_outs"] >= 1

    reference = _tiny_net().forward(
        np.stack([e.x for e in sorted(trace, key=lambda r: r.time)]),
        PlainBackend(),
        training=False,
    )
    by_id = {o.request_id: o for o in report.completed}
    for i in range(n):
        assert np.max(np.abs(by_id[i].logits - reference[i])) < 0.1


def test_epc_pool_resizing_shrinks_k_without_changing_logits():
    trace = synthetic_trace(24, (16,), n_tenants=6, mean_interarrival=1e-4, seed=3)
    static = _server(num_shards=1).serve_trace(trace)
    pooled = _server(
        num_shards=1,
        autoscale=_elastic_autoscale(
            min_shards=1, max_shards=2, epc_pool_bytes=1024
        ),
    )
    cap = pooled.scheduler.shards[0].batch_cap
    assert cap is not None and cap < 4  # the shared pool binds K
    report = pooled.serve_trace(trace)
    assert all(o.ok for o in report.outcomes)
    static_logits = {o.request_id: o.logits for o in static.completed}
    for o in report.completed:
        assert np.array_equal(o.logits, static_logits[o.request_id])
