"""End-to-end tests for the multi-tenant private-inference server."""

import numpy as np

from repro.fieldmath import PrimeField
from repro.gpu import GpuCluster, RandomTamper
from repro.nn import Dense, PlainBackend, ReLU, Sequential
from repro.runtime import DarKnightConfig
from repro.serving import (
    STATUS_INTEGRITY_FAILED,
    STATUS_SHED,
    PrivateInferenceServer,
    ServingConfig,
    TraceRequest,
    synthetic_trace,
)


def _tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 12, rng=rng), ReLU(), Dense(12, 4, rng=rng)], (16,))


def _config(**kwargs):
    dk = kwargs.pop("darknight", None) or DarKnightConfig(
        virtual_batch_size=4, seed=0
    )
    return ServingConfig(darknight=dk, **kwargs)


def test_trace_completes_and_matches_plain_backend():
    net = _tiny_net()
    trace = synthetic_trace(20, (16,), n_tenants=3, seed=1)
    server = PrivateInferenceServer(net, _config())
    report = server.serve_trace(trace)

    assert len(report.completed) == 20
    assert report.metrics.decode_errors == 0
    assert report.metrics.integrity_failures == 0

    # Private predictions must agree with the float reference per request.
    events = sorted(trace, key=lambda r: r.time)
    reference = net.forward(
        np.stack([e.x for e in events]), PlainBackend(), training=False
    )
    by_id = {o.request_id: o for o in report.completed}
    for i, event in enumerate(events):
        outcome = by_id[i]
        assert outcome.tenant == event.tenant
        assert np.max(np.abs(outcome.logits - reference[i])) < 0.1
        assert outcome.prediction == int(np.argmax(reference[i]))


def test_sessions_are_cached_per_tenant():
    net = _tiny_net()
    trace = synthetic_trace(24, (16,), n_tenants=3, seed=2)
    server = PrivateInferenceServer(net, _config())
    report = server.serve_trace(trace)
    # 24 requests, but only one attestation handshake per tenant.
    assert report.handshakes == 3
    assert sorted(report.tenants) == ["tenant0", "tenant1", "tenant2"]


def test_deadline_flushes_partial_tail():
    """A trace that cannot fill the last batch still completes via deadline."""
    net = _tiny_net()
    trace = [
        TraceRequest(time=0.001 * i, tenant="tenant0", x=np.random.default_rng(i).normal(size=16))
        for i in range(6)  # K=4: one full batch + a 2-request tail
    ]
    server = PrivateInferenceServer(net, _config(max_batch_wait=0.02))
    report = server.serve_trace(trace)
    assert len(report.completed) == 6
    triggers = report.metrics.flush_triggers()
    assert triggers.get("size") == 1
    assert triggers.get("deadline") == 1
    # The padded tail still fits the latency budget: wait <= max_batch_wait.
    assert report.metrics.latency_percentile(100) <= 0.02 + 0.01


def test_backpressure_sheds_load_instead_of_queueing_forever():
    net = _tiny_net()
    # 10 simultaneous arrivals, room for 2, and no flush before the deadline.
    trace = [
        TraceRequest(time=0.0, tenant=f"tenant{i % 2}", x=np.zeros(16))
        for i in range(10)
    ]
    server = PrivateInferenceServer(
        net, _config(queue_capacity=2, max_batch_wait=1.0)
    )
    report = server.serve_trace(trace)
    assert report.metrics.shed == 8
    assert len(report.completed) == 2
    shed = [o for o in report.outcomes if o.status == STATUS_SHED]
    assert len(shed) == 8
    assert all(o.error for o in shed)


def test_sustained_overload_sheds_instead_of_growing_latency():
    """Worker saturation must feed back into admission, not just queue depth."""
    net = _tiny_net()
    n = 120
    trace = [
        TraceRequest(time=1e-6 * i, tenant=f"tenant{i % 2}", x=np.zeros(16))
        for i in range(n)
    ]
    server = PrivateInferenceServer(
        net, _config(queue_capacity=16, max_batch_wait=0.01, n_workers=1)
    )
    report = server.serve_trace(trace)
    # Offered load far exceeds one worker's service rate: the bounded
    # queue sheds the excess and keeps the completed requests' latency
    # bounded by the backlog it admitted, not by the whole trace.
    assert report.metrics.shed > 0
    assert report.metrics.completed + report.metrics.shed == n
    backlog_bound = (16 / 4 + 1) * (2e-3 + 4 * 5e-4) + 0.01
    assert report.metrics.latency_percentile(99) <= backlog_bound


def test_byzantine_gpu_fails_requests_but_not_the_server():
    net = _tiny_net()
    dk = DarKnightConfig(virtual_batch_size=2, integrity=True, seed=3)
    cluster = GpuCluster(
        PrimeField(),
        dk.n_gpus_required,
        fault_injectors={0: RandomTamper(PrimeField(), probability=1.0, seed=4)},
    )
    trace = synthetic_trace(8, (16,), n_tenants=2, seed=5)
    server = PrivateInferenceServer(net, _config(darknight=dk), cluster=cluster)
    report = server.serve_trace(trace)
    assert report.metrics.integrity_failures == 8
    assert len(report.completed) == 0
    assert all(o.status == STATUS_INTEGRITY_FAILED for o in report.outcomes)


def test_saturating_tenant_cannot_starve_others():
    net = _tiny_net()
    trace = synthetic_trace(
        40, (16,), n_tenants=4, seed=6, hot_tenant_share=0.7
    )
    server = PrivateInferenceServer(net, _config())
    report = server.serve_trace(trace)
    assert len(report.completed) == 40
    per_tenant = report.metrics.completed_by_tenant()
    issued = {}
    for event in trace:
        issued[event.tenant] = issued.get(event.tenant, 0) + 1
    assert per_tenant == issued


def test_serving_reuses_cached_coefficients():
    net = _tiny_net()
    trace = synthetic_trace(32, (16,), n_tenants=2, seed=7)
    server = PrivateInferenceServer(net, _config())
    server.serve_trace(trace)
    ledger = server.enclave.ledger
    # Two Dense layers x 8 batches = 16 encodes, but only one generation.
    assert ledger.op_counts.get("generate_coefficients", 0) == 1
    assert ledger.op_counts.get("reuse_coefficients", 0) >= 15


def test_fresh_coefficients_escape_hatch_disables_the_cache():
    net = _tiny_net()
    dk = DarKnightConfig(virtual_batch_size=4, seed=8, fresh_coefficients=True)
    trace = synthetic_trace(8, (16,), n_tenants=1, seed=8)
    server = PrivateInferenceServer(
        net, _config(darknight=dk, reuse_coefficients=False)
    )
    server.serve_trace(trace)
    ledger = server.enclave.ledger
    assert ledger.op_counts.get("generate_coefficients", 0) > 1
    assert ledger.op_counts.get("reuse_coefficients", 0) == 0


def test_pipelined_server_logits_bit_identical_to_synchronous():
    """Depth 4 serving must produce the exact logits of depth-1 serving."""
    trace = synthetic_trace(24, (16,), n_tenants=3, seed=11)
    by_depth = {}
    for depth in (1, 4):
        dk = DarKnightConfig(virtual_batch_size=4, seed=0, pipeline_depth=depth)
        server = PrivateInferenceServer(_tiny_net(), _config(darknight=dk))
        report = server.serve_trace(trace)
        assert len(report.completed) == 24
        by_depth[depth] = {o.request_id: o.logits for o in report.completed}
    for rid, logits in by_depth[1].items():
        assert np.array_equal(logits, by_depth[4][rid])


class _TransientTamper:
    """Corrupts the first ``fail_calls`` dense kernels, then goes honest."""

    def __init__(self, field, fail_calls=1):
        from repro.gpu import RandomTamper

        self._inner = RandomTamper(field, probability=1.0, seed=9)
        self._remaining = fail_calls

    def corrupt(self, tensor, device_id, op_name):
        if op_name == "dense_forward" and self._remaining > 0:
            self._remaining -= 1
            return self._inner.corrupt(tensor, device_id, op_name)
        return tensor


def test_window_abort_retries_batches_individually():
    """A transient fault aborting a shared window must not fail co-flushed
    batches: the pool re-dispatches per batch and all requests complete."""
    from repro.runtime.darknight import DarKnightBackend
    from repro.runtime.inference import PrivateInferenceEngine
    from repro.serving import InferenceWorkerPool, PendingRequest, ScheduledBatch

    net = _tiny_net()
    dk = DarKnightConfig(
        virtual_batch_size=2, integrity=True, seed=12, pipeline_depth=2
    )
    field = PrimeField()
    cluster = GpuCluster(
        field, dk.n_gpus_required, fault_injectors={0: _TransientTamper(field)}
    )
    engine = PrivateInferenceEngine(
        net, backend=DarKnightBackend(dk, cluster=cluster)
    )
    pool = InferenceWorkerPool(engine)
    rng = np.random.default_rng(13)
    batches = [
        ScheduledBatch(
            batch_id=b,
            requests=[
                PendingRequest(
                    request_id=2 * b + i,
                    tenant=f"tenant{i}",
                    x=rng.normal(size=16),
                    arrival_time=0.0,
                    enqueue_time=0.0,
                )
                for i in range(2)
            ],
            flush_time=0.0,
            trigger="drain",
            slots=2,
        )
        for b in range(3)
    ]
    outcomes = pool.dispatch_window(batches)
    # The tampered kernel aborted the shared window; each batch was then
    # retried alone, the fault had passed, and every request completed.
    assert len(outcomes) == 6
    assert all(o.ok for o in outcomes)
    engine.backend.assert_encodings_released()


def test_aborted_window_occupancy_is_charged_to_busy_time():
    """Regression: a multi-batch window aborted by an integrity fault
    used to drop the aborted attempt's enclave occupancy from
    ``busy_time`` — the pool's accounting must cover *all* timeline
    occupancy, aborted attempts included."""
    import pytest

    from repro.runtime.darknight import DarKnightBackend
    from repro.runtime.inference import PrivateInferenceEngine
    from repro.serving import InferenceWorkerPool, PendingRequest, ScheduledBatch

    net = _tiny_net()
    dk = DarKnightConfig(
        virtual_batch_size=2, integrity=True, seed=12, pipeline_depth=2
    )
    field = PrimeField()
    cluster = GpuCluster(
        field, dk.n_gpus_required, fault_injectors={0: _TransientTamper(field)}
    )
    engine = PrivateInferenceEngine(
        net, backend=DarKnightBackend(dk, cluster=cluster)
    )
    pool = InferenceWorkerPool(engine)
    rng = np.random.default_rng(13)
    batches = [
        ScheduledBatch(
            batch_id=b,
            requests=[
                PendingRequest(
                    request_id=2 * b + i,
                    tenant=f"tenant{i}",
                    x=rng.normal(size=16),
                    arrival_time=0.0,
                    enqueue_time=0.0,
                )
                for i in range(2)
            ],
            flush_time=0.0,
            trigger="drain",
            slots=2,
        )
        for b in range(3)
    ]
    outcomes = pool.dispatch_window(batches)
    assert all(o.ok for o in outcomes)
    shard = pool.shards[0]
    # Everything the enclave timeline was ever occupied with — the
    # aborted shared window plus the isolating re-runs — is accounted.
    assert pool.busy_time == pytest.approx(shard.engine.timeline.busy_time)
    assert pool.busy_time == pytest.approx(shard.busy_time)


def test_report_renders_metrics_and_session_facts():
    net = _tiny_net()
    trace = synthetic_trace(8, (16,), n_tenants=2, seed=9)
    server = PrivateInferenceServer(net, _config())
    text = server.serve_trace(trace).render()
    assert "Serving metrics" in text
    assert "attestation handshakes" in text


def test_plaintext_mode_skips_channel_crypto():
    net = _tiny_net()
    trace = synthetic_trace(8, (16,), n_tenants=2, seed=10)
    encrypted = PrivateInferenceServer(net, _config())
    encrypted_report = encrypted.serve_trace(trace)
    plain = PrivateInferenceServer(_tiny_net(), _config(encrypt_requests=False))
    plain_report = plain.serve_trace(trace)
    assert len(plain_report.completed) == len(encrypted_report.completed) == 8
    assert plain_report.link_bytes < encrypted_report.link_bytes


def test_premium_arrival_evicts_best_effort_backlog_end_to_end():
    """A full deployment admits premium traffic by evicting the newest
    best-effort pending request, with both shed kinds accounted."""
    from repro.serving import SloClass, SloPolicy

    slo = SloPolicy(
        classes={"premium": SloClass(name="premium", latency_budget=0.005, priority=1)},
        assignments={"tenant0": "premium"},
    )
    net = _tiny_net()
    rng = np.random.default_rng(3)
    # A best-effort burst fills the whole capacity at t=0, then premium
    # and best-effort arrivals contend for the full queue.
    trace = [
        TraceRequest(time=0.0, tenant="tenant1", x=rng.normal(size=16))
        for _ in range(4)
    ]
    trace += [TraceRequest(time=1e-5, tenant="tenant1", x=rng.normal(size=16))]
    trace += [TraceRequest(time=2e-5, tenant="tenant0", x=rng.normal(size=16))]
    server = PrivateInferenceServer(
        net,
        _config(
            queue_capacity=4,
            max_batch_wait=0.01,
            slo=slo,
            darknight=DarKnightConfig(virtual_batch_size=8, seed=0),
        ),
    )
    report = server.serve_trace(trace)
    snap = report.metrics.snapshot()
    # The best-effort arrival at the full queue was refused; the premium
    # one evicted a pending best-effort request instead.
    assert snap["shed_at_admission"] == 1
    assert snap["shed_evicted"] == 1
    assert snap["shed"] == 2
    shed = [o for o in report.outcomes if o.status == STATUS_SHED]
    assert {o.tenant for o in shed} == {"tenant1"}
    # Premium completed; exactly 4 requests served (capacity held).
    premium = [o for o in report.completed if o.tenant == "tenant0"]
    assert len(premium) == 1
    assert len(report.completed) == 4
    assert sum(q.evicted_count for q in server.queues) == 1


def test_all_default_slo_policy_is_bit_identical_to_no_policy():
    """An SloPolicy whose every class is the default must not change a
    single bit, batch id, or completion time."""
    from repro.serving import SloPolicy

    net = _tiny_net()
    trace = synthetic_trace(24, (16,), n_tenants=3, seed=6)
    baseline = PrivateInferenceServer(net, _config()).serve_trace(trace)
    with_policy = PrivateInferenceServer(
        net, _config(slo=SloPolicy())
    ).serve_trace(trace)
    a = {o.request_id: o for o in baseline.completed}
    b = {o.request_id: o for o in with_policy.completed}
    assert sorted(a) == sorted(b)
    for rid in a:
        assert np.array_equal(a[rid].logits, b[rid].logits)
        assert a[rid].completion_time == b[rid].completion_time
        assert a[rid].batch_id == b[rid].batch_id


def test_quota_shed_surfaces_in_server_metrics():
    """An over-quota arrival is shed with the quota-specific counter, not
    lumped in with plain queue-full sheds."""
    from repro.serving import SloClass, SloPolicy

    net = _tiny_net()
    policy = SloPolicy(
        classes={"bulk": SloClass(name="bulk", admission_share=0.25)},
        assignments={"tenant0": "bulk"},
    )
    # capacity 8, share 0.25 -> 2 bulk slots; 6 simultaneous bulk arrivals.
    trace = [
        TraceRequest(time=0.0, tenant="tenant0", x=np.zeros(16)) for _ in range(6)
    ]
    server = PrivateInferenceServer(
        net, _config(queue_capacity=8, max_batch_wait=1.0, slo=policy)
    )
    report = server.serve_trace(trace)
    assert report.metrics.shed_quota == 4
    assert report.metrics.shed == 4
    assert len(report.completed) == 2
    shed = [o for o in report.outcomes if o.status == STATUS_SHED]
    assert len(shed) == 4 and all("quota" in o.error for o in shed)
