"""The unified serving-config surface: dict round-trip and presets.

``ServingConfig`` threads five sub-configs (DarKnight, adaptive
batching, SLO policy, audit trail, autoscale) behind one strict-JSON
surface: ``to_dict``/``from_dict`` must round-trip every combination,
reject typos loudly, and encode infinite SLO budgets as ``null``.
"""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.timing import StageCostModel
from repro.runtime import DarKnightConfig
from repro.serving import (
    PRESETS,
    AdaptiveBatchingConfig,
    AuditConfig,
    AutoscaleConfig,
    ServingConfig,
    build_slo_policy,
)


def _full_config():
    return ServingConfig(
        darknight=DarKnightConfig(
            virtual_batch_size=8,
            integrity=True,
            pipeline_depth=2,
            num_shards=2,
            seed=7,
        ),
        max_batch_wait=5e-3,
        queue_capacity=128,
        coalesce=True,
        stage_costs=StageCostModel(),
        adaptive=AdaptiveBatchingConfig(target_fill=0.7),
        slo=build_slo_policy({"premium": 5e-3}, {"tenant0": "premium"}),
        shard_weights=(2.0, 1.0),
        audit=AuditConfig(log_dir="/tmp/audit", model="tiny"),
        autoscale=AutoscaleConfig(min_shards=1, max_shards=3),
    )


def test_default_config_round_trips():
    cfg = ServingConfig()
    assert ServingConfig.from_dict(cfg.to_dict()) == cfg


def test_full_config_round_trips_every_sub_config():
    cfg = _full_config()
    rebuilt = ServingConfig.from_dict(cfg.to_dict())
    assert rebuilt == cfg
    assert rebuilt.darknight == cfg.darknight
    assert rebuilt.adaptive == cfg.adaptive
    assert rebuilt.audit == cfg.audit
    assert rebuilt.autoscale == cfg.autoscale
    assert rebuilt.slo.classes == cfg.slo.classes
    assert rebuilt.slo.assignments == cfg.slo.assignments
    assert rebuilt.shard_weights == cfg.shard_weights


def test_to_dict_is_strict_json_safe_with_infinite_budgets():
    cfg = _full_config()
    # The default SLO class carries an infinite budget; it must encode
    # as null, not the non-strict Infinity literal.
    assert math.isinf(cfg.slo.classes["standard"].latency_budget)
    text = json.dumps(cfg.to_dict(), allow_nan=False, sort_keys=True)
    rebuilt = ServingConfig.from_dict(json.loads(text))
    assert math.isinf(rebuilt.slo.classes["standard"].latency_budget)
    assert rebuilt == cfg


def test_from_dict_rejects_unknown_keys_and_non_dicts():
    with pytest.raises(ConfigurationError, match="unknown serving config"):
        ServingConfig.from_dict({"batch_wait": 0.01})
    with pytest.raises(ConfigurationError):
        ServingConfig.from_dict(["not", "a", "dict"])
    with pytest.raises(ConfigurationError, match="bad serving config"):
        ServingConfig.from_dict(
            {"adaptive": {"target_fill": 0.8, "typo_knob": 1}}
        )


def test_from_dict_validates_sub_config_values():
    with pytest.raises(ConfigurationError):
        ServingConfig.from_dict({"autoscale": {"min_shards": 0}})
    with pytest.raises(ConfigurationError):
        ServingConfig.from_dict({"darknight": {"virtual_batch_size": 0}})


@pytest.mark.parametrize("name", PRESETS)
def test_every_preset_builds_and_round_trips(name):
    cfg = ServingConfig.preset(name)
    assert ServingConfig.from_dict(cfg.to_dict()) == cfg


def test_presets_carry_their_posture():
    assert ServingConfig.preset("latency").adaptive is not None
    assert ServingConfig.preset("latency").darknight.pipeline_depth == 2
    assert ServingConfig.preset("throughput").darknight.virtual_batch_size == 8
    audited = ServingConfig.preset("audited")
    assert audited.darknight.integrity and audited.audit is not None


def test_preset_overrides_and_unknown_name():
    cfg = ServingConfig.preset("latency", queue_capacity=64)
    assert cfg.queue_capacity == 64
    with pytest.raises(ConfigurationError, match="unknown serving preset"):
        ServingConfig.preset("speed")
