"""Tests for per-tenant SLO classes across the whole request path."""

import math

import numpy as np
import pytest

from repro.errors import BackpressureError, ConfigurationError
from repro.serving import (
    FLUSH_BUDGET_FRACTION,
    PendingRequest,
    RequestQueue,
    ServerMetrics,
    SloClass,
    SloPolicy,
    VirtualBatchScheduler,
    build_slo_policy,
)
from repro.serving.adaptive import AdaptiveFlushPolicy
from repro.serving.metrics import SHED_EVICTED
from repro.serving.requests import STATUS_OK, RequestOutcome
from repro.serving.scheduler import ShardedBatchScheduler
from repro.sharding import ShardRouter

PREMIUM = SloClass(name="premium", latency_budget=0.004, priority=2)
BULK = SloClass(name="bulk", latency_budget=math.inf, priority=-1, shed_weight=2.0)


def _policy(assignments=None):
    return SloPolicy(
        classes={"premium": PREMIUM, "bulk": BULK},
        assignments=assignments or {"p0": "premium", "b0": "bulk", "b1": "bulk"},
    )


def _req(request_id, tenant="t0", t=0.0):
    return PendingRequest(
        request_id=request_id,
        tenant=tenant,
        x=np.zeros(4),
        arrival_time=t,
        enqueue_time=t,
    )


# ----------------------------------------------------------------------
# SloClass / SloPolicy
# ----------------------------------------------------------------------
def test_default_class_is_todays_behavior():
    policy = SloPolicy()
    assert policy.budget_for("anyone") == math.inf
    assert policy.priority_for("anyone") == 0
    assert policy.class_for("anyone").name == "standard"
    assert policy.tightest_flush_budget() is None


def test_policy_lookups_and_class_table():
    policy = _policy()
    assert policy.budget_for("p0") == pytest.approx(0.004)
    assert policy.flush_budget_for("p0") == pytest.approx(
        0.004 * FLUSH_BUDGET_FRACTION
    )
    assert policy.priority_for("b0") == -1
    assert policy.priority_for("stranger") == 0
    assert policy.tightest_flush_budget() == pytest.approx(
        0.004 * FLUSH_BUDGET_FRACTION
    )
    table = {row["name"]: row for row in policy.class_table()}
    assert table["premium"]["tenants"] == ["p0"]
    assert table["bulk"]["latency_budget"] is None  # strict-JSON inf
    assert table["standard"]["priority"] == 0


def test_invalid_classes_and_assignments_rejected():
    with pytest.raises(ConfigurationError):
        SloClass(name="", latency_budget=1.0)
    with pytest.raises(ConfigurationError):
        SloClass(name="x", latency_budget=0.0)
    with pytest.raises(ConfigurationError):
        SloClass(name="x", shed_weight=-1.0)
    with pytest.raises(ConfigurationError):
        SloPolicy(classes={"a": SloClass(name="b")})
    with pytest.raises(ConfigurationError):
        SloPolicy(assignments={"t0": "undefined"})


def test_build_slo_policy_ranks_priority_by_budget_tightness():
    policy = build_slo_policy(
        {"premium": 0.002, "standard-plus": 0.050},
        {"t0": "premium", "t1": "standard-plus"},
    )
    assert policy.priority_for("t0") > policy.priority_for("t1") > 0
    assert policy.budget_for("t0") == pytest.approx(0.002)
    with pytest.raises(ConfigurationError):
        build_slo_policy({}, {"t0": "premium"})
    with pytest.raises(ConfigurationError):
        build_slo_policy({"premium": 0.0})


# ----------------------------------------------------------------------
# admission: class-aware eviction
# ----------------------------------------------------------------------
def test_premium_arrival_evicts_newest_lowest_priority_pending():
    q = RequestQueue(capacity=3, slo=_policy())
    q.push(_req(0, tenant="b0", t=0.0))
    q.push(_req(1, tenant="b0", t=0.001))
    q.push(_req(2, tenant="stranger", t=0.002))
    victim = q.push(_req(3, tenant="p0", t=0.003))
    # The newest *lowest-priority* pending request goes — bulk (-1)
    # before the default-class stranger, newest bulk request first.
    assert victim is not None and victim.request_id == 1
    assert q.depth == 3
    assert q.evicted_count == 1
    assert q.shed_count == 0
    # The premium request is queued, the stranger survived.
    tenants = {r.tenant for r in q.pop_fair(3)}
    assert tenants == {"b0", "stranger", "p0"}


def test_equal_priority_sheds_the_arrival_exactly_as_before():
    q = RequestQueue(capacity=2, slo=_policy())
    q.push(_req(0, tenant="stranger"))
    q.push(_req(1, tenant="other"))
    with pytest.raises(BackpressureError):
        q.push(_req(2, tenant="third"))  # default class cannot evict default
    assert q.shed_count == 1
    assert q.evicted_count == 0


def test_full_queue_of_premium_sheds_bulk_arrival():
    q = RequestQueue(capacity=1, slo=_policy())
    q.push(_req(0, tenant="p0"))
    with pytest.raises(BackpressureError):
        q.push(_req(1, tenant="b0"))
    assert q.depth == 1
    assert q.evicted_count == 0


def test_eviction_prunes_drained_tenant_from_rotation():
    q = RequestQueue(capacity=2, slo=_policy())
    q.push(_req(0, tenant="b0"))
    q.push(_req(1, tenant="stranger"))
    victim = q.push(_req(2, tenant="p0"))
    assert victim.request_id == 0  # b0's only request
    # b0 drained by eviction: rotation must not hold a phantom turn.
    assert [r.tenant for r in q.pop_fair(2)] == ["stranger", "p0"]
    assert q.depth == 0


def test_shed_weight_breaks_ties_within_a_priority():
    heavy = SloClass(name="heavy", priority=-1, shed_weight=5.0)
    light = SloClass(name="light", priority=-1, shed_weight=1.0)
    policy = SloPolicy(
        classes={"heavy": heavy, "light": light},
        assignments={"h": "heavy", "l": "light"},
    )
    q = RequestQueue(capacity=2, slo=policy)
    q.push(_req(0, tenant="l", t=0.0))
    q.push(_req(1, tenant="h", t=0.0))
    victim = q.push(_req(2, tenant="anyone", t=0.001))
    assert victim.tenant == "h"  # heavier shed weight goes first


def test_queue_without_policy_is_unchanged():
    q = RequestQueue(capacity=1)
    q.push(_req(0))
    with pytest.raises(BackpressureError):
        q.push(_req(1))
    assert q.evicted_count == 0
    assert q.earliest_deadline(0.01) == pytest.approx(0.01)


# ----------------------------------------------------------------------
# flush: minimum-remaining-budget deadlines
# ----------------------------------------------------------------------
def test_premium_budget_pulls_the_flush_deadline_forward():
    q = RequestQueue(capacity=16, slo=_policy())
    sched = VirtualBatchScheduler(q, batch_size=4, max_wait=0.010)
    q.push(_req(0, tenant="stranger", t=0.0))
    q.push(_req(1, tenant="p0", t=0.001))
    # Without SLO the deadline would be 0.010 (oldest + max_wait); the
    # premium flush budget (4ms * fraction = 2ms) fires at 0.003.
    assert sched.collect_expired(now=0.0029) == []
    batches = sched.collect_expired(now=0.0031)
    assert len(batches) == 1
    assert batches[0].flush_time == pytest.approx(0.001 + PREMIUM.flush_budget)
    assert {r.tenant for r in batches[0].requests} == {"stranger", "p0"}


def test_budgetless_queue_keeps_the_classic_deadline():
    q = RequestQueue(capacity=16, slo=_policy())
    sched = VirtualBatchScheduler(q, batch_size=4, max_wait=0.010)
    q.push(_req(0, tenant="stranger", t=0.0))
    q.push(_req(1, tenant="b0", t=0.004))
    assert sched.collect_expired(now=0.0099) == []
    batches = sched.collect_expired(now=0.0101)
    assert len(batches) == 1
    assert batches[0].flush_time == pytest.approx(0.010)


def test_sharded_mixed_deadline_drain_interleaves_in_deadline_order():
    """collect_expired must merge shards into one deadline-ordered stream
    even when per-shard deadlines interleave (mixed budgets + enqueue
    times) — asserted nowhere before this test."""
    slo = _policy()
    queues = [RequestQueue(16, slo=slo), RequestQueue(16, slo=slo)]
    sched = ShardedBatchScheduler(queues, batch_size=1, max_wait=0.010)
    # Shard 0: default-class requests -> deadlines 0.010 and 0.014.
    queues[0].push(_req(0, tenant="s0a", t=0.000))
    queues[0].push(_req(1, tenant="s0b", t=0.004))
    # Shard 1: a premium request (budget 2ms -> 0.008) and a default one
    # (0.012) — both interleave with shard 0's deadlines.
    queues[1].push(_req(2, tenant="p0", t=0.006))
    queues[1].push(_req(3, tenant="s1b", t=0.002))
    batches = sched.collect_expired(now=math.inf)
    flush_times = [b.flush_time for b in batches]
    assert flush_times == sorted(flush_times)
    assert [b.shard_id for b in batches] == [1, 0, 1, 0]
    assert flush_times == pytest.approx([0.008, 0.010, 0.012, 0.014])


def test_adaptive_policy_ceiling_clamps_to_the_tightest_flush_budget():
    policy = AdaptiveFlushPolicy(
        batch_size=4, max_wait=0.010, budget_ceiling=0.002
    )
    assert policy.ceiling == pytest.approx(0.002)
    for i in range(32):
        policy.observe_arrival(i * 1.0)  # huge gaps, winsorized at ceiling
    assert policy.current_wait() <= 0.002 + 1e-12
    with pytest.raises(ConfigurationError):
        AdaptiveFlushPolicy(batch_size=4, max_wait=0.01, budget_ceiling=0.0)


# ----------------------------------------------------------------------
# placement: SLO-aware pinning
# ----------------------------------------------------------------------
def test_premium_tenants_spread_across_lightly_loaded_shards():
    slo = build_slo_policy(
        {"premium": 0.005},
        {f"vip{i}": "premium" for i in range(4)},
    )
    router = ShardRouter(4, slo=slo)
    # Load the deployment unevenly with default-class tenants.
    for i in range(12):
        router.shard_for(f"tenant{i}")
    loads_before = router.loads()
    # Each premium tenant lands on the then-lightest shard, not the ring.
    for i in range(4):
        pinned = router.shard_for(f"vip{i}")
        assert loads_before[pinned] == min(loads_before)
        loads_before[pinned] += 1
    assert router.slo_pins == 4
    # Pins stay sticky on re-lookup (no double counting).
    router.shard_for("vip0")
    assert router.slo_pins == 4


# ----------------------------------------------------------------------
# metrics: per-class latency + shed split
# ----------------------------------------------------------------------
def _ok(request_id, tenant, arrival, completion):
    return RequestOutcome(
        request_id=request_id,
        tenant=tenant,
        status=STATUS_OK,
        arrival_time=arrival,
        dispatch_time=arrival,
        completion_time=completion,
        prediction=0,
    )


def test_per_class_percentiles_and_attainment():
    metrics = ServerMetrics(slo=_policy())
    metrics.record_outcome(_ok(0, "p0", 0.0, 0.003))   # inside 4ms budget
    metrics.record_outcome(_ok(1, "p0", 0.0, 0.009))   # violates it
    metrics.record_outcome(_ok(2, "b0", 0.0, 0.500))   # bulk: no budget
    assert metrics.class_latency_percentile("premium", 50) == pytest.approx(0.006)
    assert metrics.slo_attainment("premium") == pytest.approx(0.5)
    assert metrics.slo_attainment("bulk") == pytest.approx(1.0)
    assert metrics.slo_attainment() == pytest.approx(2 / 3)
    snap = metrics.snapshot()
    assert snap["slo_attainment"] == pytest.approx(2 / 3)
    assert snap["slo_classes"]["premium"]["completed"] == 2
    assert snap["slo_classes"]["premium"]["latency_budget"] == pytest.approx(0.004)
    assert snap["slo_classes"]["bulk"]["latency_budget"] is None
    assert "premium p99" in metrics.render()


def test_shed_accounting_distinguishes_eviction_from_admission():
    metrics = ServerMetrics(slo=_policy())
    metrics.record_shed("b0")  # default kind: refused at admission
    metrics.record_shed("b1", kind=SHED_EVICTED)
    assert metrics.shed == 2
    assert metrics.shed_at_admission == 1
    assert metrics.shed_evicted == 1
    snap = metrics.snapshot()
    assert snap["shed_at_admission"] == 1
    assert snap["shed_evicted"] == 1
    with pytest.raises(ValueError):
        metrics.record_shed("b0", kind="nonsense")


def test_metrics_without_policy_keep_stable_snapshot_shape():
    import json

    metrics = ServerMetrics()
    metrics.record_outcome(_ok(0, "a", 0.0, 0.01))
    snap = metrics.snapshot()
    assert snap["slo_attainment"] is None
    assert snap["slo_classes"] == {}
    json.loads(json.dumps(snap), parse_constant=lambda c: pytest.fail(c))


def test_equal_budgets_share_a_priority_rank():
    """Identical contracts must never evict each other: equal budgets map
    to one priority, regardless of class-name sort order."""
    policy = build_slo_policy({"gold": 0.005, "silver": 0.005, "bulk": 0.050})
    gold, silver, bulk = (
        policy.classes["gold"], policy.classes["silver"], policy.classes["bulk"]
    )
    assert gold.priority == silver.priority
    assert gold.priority > bulk.priority > 0


def test_admission_share_validation_and_cap():
    with pytest.raises(ConfigurationError):
        SloClass(name="bad", admission_share=0.0)
    with pytest.raises(ConfigurationError):
        SloClass(name="bad", admission_share=1.5)
    cls = SloClass(name="bulk", admission_share=0.25)
    assert cls.admission_cap(8) == 2
    assert cls.admission_cap(100) == 25
    # The floor: any valid share always gets at least one slot.
    assert SloClass(name="tiny", admission_share=0.01).admission_cap(4) == 1
    # class_table rows carry the knob for telemetry.
    table = SloPolicy(classes={"bulk": cls}).class_table()
    by_name = {row["name"]: row for row in table}
    assert by_name["bulk"]["admission_share"] == pytest.approx(0.25)
    assert by_name["standard"]["admission_share"] == pytest.approx(1.0)
