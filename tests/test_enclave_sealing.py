"""Tests for sealing and the untrusted blob store."""

import numpy as np
import pytest

from repro.enclave import Sealer, UntrustedStore, measure_enclave
from repro.errors import SealingError


@pytest.fixture()
def sealer(nprng):
    return Sealer(b"platform-root-key", measure_enclave("enclave-v1"), nprng)


def test_seal_unseal_roundtrip(sealer, nprng):
    arr = nprng.normal(size=(4, 7))
    blob = sealer.seal(arr, label=b"gradients")
    assert np.array_equal(sealer.unseal(blob), arr)


def test_wrong_enclave_cannot_unseal(sealer, nprng):
    arr = nprng.normal(size=(3,))
    blob = sealer.seal(arr)
    other = Sealer(b"platform-root-key", measure_enclave("evil-enclave"), nprng)
    with pytest.raises(SealingError):
        other.unseal(blob)


def test_wrong_platform_cannot_unseal(sealer, nprng):
    arr = nprng.normal(size=(3,))
    blob = sealer.seal(arr)
    other = Sealer(b"different-fuse-key!", sealer.measurement, nprng)
    with pytest.raises(SealingError):
        other.unseal(blob)


def test_store_evict_reload_accounting(sealer, nprng):
    store = UntrustedStore()
    blob = sealer.seal(nprng.normal(size=(16,)))
    store.evict("w1", blob)
    assert store.bytes_written == blob.nbytes
    got = store.reload("w1")
    assert store.bytes_read == blob.nbytes
    assert np.array_equal(sealer.unseal(got), sealer.unseal(blob))


def test_store_missing_key(sealer):
    store = UntrustedStore()
    with pytest.raises(SealingError):
        store.reload("missing")


def test_store_drop_and_keys(sealer, nprng):
    store = UntrustedStore()
    store.evict("a", sealer.seal(nprng.normal(size=(2,))))
    store.evict("b", sealer.seal(nprng.normal(size=(2,))))
    assert sorted(store.keys()) == ["a", "b"]
    store.drop("a")
    assert store.keys() == ["b"]
    store.drop("a")  # idempotent


def test_adversarial_tamper_is_caught(sealer, nprng):
    store = UntrustedStore()
    store.evict("w", sealer.seal(nprng.normal(size=(8,))))
    store.tamper("w", position=3)
    with pytest.raises(SealingError):
        sealer.unseal(store.reload("w"))


def test_label_binding(sealer, nprng):
    arr = nprng.normal(size=(4,))
    blob = sealer.seal(arr, label=b"vb0")
    # Re-wrapping with a different label must fail authentication.
    from repro.enclave.crypto import Ciphertext
    from repro.enclave.sealing import SealedBlob

    forged = SealedBlob(
        ciphertext=Ciphertext(
            nonce=blob.ciphertext.nonce,
            data=blob.ciphertext.data,
            tag=blob.ciphertext.tag,
            aad=b"vb1",
        ),
        dtype=blob.dtype,
        shape=blob.shape,
    )
    with pytest.raises(SealingError):
        sealer.unseal(forged)
