"""Integration tests: the full DarKnight story on one stage.

These tests wire the real pieces together — enclave, masked backend, GPU
cluster with an adversary, Slalom comparison, sealed aggregation — the way
the examples and the paper's Section 3.1 flow describe.
"""

import numpy as np
import pytest

from repro.data import cifar_like
from repro.errors import IntegrityError
from repro.fieldmath import PrimeField
from repro.gpu import GpuCluster, RandomTamper, TargetedTamper
from repro.models import build_mini_resnet, build_mini_vgg
from repro.nn import PlainBackend
from repro.runtime import (
    DarKnightBackend,
    DarKnightConfig,
    PrivateInferenceEngine,
    Trainer,
)
from repro.slalom import SlalomBackend, SlalomTrainingError


def test_private_training_then_private_inference(nprng):
    """Train privately, infer privately with integrity, match plain preds."""
    data = cifar_like(n_train=32, n_test=12, seed=0, size=8)
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=nprng, width=8)
    cfg = DarKnightConfig(virtual_batch_size=2, seed=0)
    trainer = Trainer(net, DarKnightBackend(cfg), lr=0.08, momentum=0.9)
    history = trainer.fit(data.x_train, data.y_train, epochs=2, batch_size=8)
    assert history.loss[-1] < history.loss[0]

    engine = PrivateInferenceEngine(
        net, DarKnightConfig(virtual_batch_size=2, integrity=True, seed=1)
    )
    private_preds = engine.predict(data.x_test[:6])
    plain_preds = np.argmax(net.predict(data.x_test[:6], PlainBackend()), axis=1)
    assert np.mean(private_preds == plain_preds) >= 0.8


def test_malicious_gpu_cannot_corrupt_training_silently(nprng):
    """With integrity on, a tampering GPU aborts the step instead of
    poisoning the model (the paper's sabotage scenario)."""
    field = PrimeField()
    cfg = DarKnightConfig(virtual_batch_size=2, integrity=True, seed=0)
    cluster = GpuCluster(
        field,
        cfg.n_gpus_required,
        fault_injectors={
            2: TargetedTamper(
                RandomTamper(field, probability=1.0, seed=1), "backward_equation_dense"
            )
        },
    )
    backend = DarKnightBackend(cfg, cluster=cluster)
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=4, rng=nprng, width=8)
    trainer = Trainer(net, backend, lr=0.05)
    x = nprng.normal(size=(4, 3, 8, 8))
    y = nprng.integers(0, 4, 4)
    with pytest.raises(IntegrityError):
        trainer.train_step(x, y)


def test_batchnorm_model_trains_privately(nprng):
    """The ResNet family (BN inside the TEE) works through the masked path."""
    data = cifar_like(n_train=16, n_test=8, seed=2, size=8)
    net = build_mini_resnet(input_shape=(3, 8, 8), n_classes=10, rng=nprng, width=8)
    trainer = Trainer(
        net,
        DarKnightBackend(DarKnightConfig(virtual_batch_size=2, seed=3)),
        lr=0.05,
    )
    losses = [trainer.train_step(data.x_train, data.y_train) for _ in range(3)]
    assert losses[-1] < losses[0] * 1.5  # moving, not diverging


def test_darknight_trains_where_slalom_cannot(nprng):
    """The paper's core comparison, executed: same model, same data —
    DarKnight completes a training step, Slalom refuses."""
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=4, rng=nprng, width=8)
    x = nprng.normal(size=(2, 3, 8, 8))
    y = nprng.integers(0, 4, 2)

    dk_trainer = Trainer(
        net, DarKnightBackend(DarKnightConfig(virtual_batch_size=2, seed=0)), lr=0.01
    )
    dk_trainer.train_step(x, y)  # works

    slalom_trainer = Trainer(net, SlalomBackend(), lr=0.01)
    with pytest.raises(SlalomTrainingError):
        slalom_trainer.train_step(x, y)


def test_both_systems_agree_on_inference(nprng):
    """DarKnight and Slalom produce the same (quantized) inference results."""
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=4, rng=nprng, width=8)
    x = nprng.normal(size=(2, 3, 8, 8))
    out_dk = net.forward(
        x, DarKnightBackend(DarKnightConfig(virtual_batch_size=2, seed=0)), training=False
    )
    out_slalom = net.forward(x, SlalomBackend(), training=False)
    out_plain = net.forward(x, PlainBackend(), training=False)
    assert np.max(np.abs(out_dk - out_plain)) < 0.15
    assert np.max(np.abs(out_slalom - out_plain)) < 0.15


def test_sealed_aggregation_training_step_equivalence(nprng):
    """Algorithm 2 routing changes nothing about the computed update."""
    data = cifar_like(n_train=8, n_test=4, seed=5, size=8)

    def run(sealed: bool):
        rng = np.random.default_rng(42)
        net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=rng, width=8)
        cfg = DarKnightConfig(virtual_batch_size=2, seed=6, sealed_aggregation=sealed)
        trainer = Trainer(net, DarKnightBackend(cfg), lr=0.05, momentum=0.0)
        trainer.train_step(data.x_train, data.y_train)
        # Layer auto-names differ between net instances; compare parameters
        # positionally (construction order is deterministic).
        return list(net.state_dict().values())

    plain_state = run(False)
    sealed_state = run(True)
    assert len(plain_state) == len(sealed_state)
    for i, (a, b) in enumerate(zip(plain_state, sealed_state)):
        assert np.allclose(a, b, atol=1e-9), i


def test_quantization_noise_bounded_over_deep_stack(nprng):
    """Accumulated fixed-point error through conv+dense stays bounded."""
    net = build_mini_vgg(input_shape=(3, 8, 8), n_classes=10, rng=nprng, width=8)
    x = nprng.normal(size=(4, 3, 8, 8))
    out_dk = net.forward(
        x, DarKnightBackend(DarKnightConfig(virtual_batch_size=2, seed=0)), training=False
    )
    out_plain = net.forward(x, PlainBackend(), training=False)
    rel = np.max(np.abs(out_dk - out_plain)) / (np.max(np.abs(out_plain)) + 1e-9)
    assert rel < 0.25
