"""Tests for per-tenant attested session caching."""

import numpy as np
import pytest

from repro.comm import LinkModel
from repro.enclave import Enclave
from repro.errors import AttestationError, CommunicationError
from repro.serving import SessionManager


@pytest.fixture()
def enclave():
    return Enclave(code_identity="darknight-enclave-v1", seed=7)


def test_handshake_runs_once_per_tenant(enclave):
    link = LinkModel()
    manager = SessionManager(enclave, link=link, rng=np.random.default_rng(0))
    first = manager.connect("alice", now=0.0)
    bytes_after_handshake = link.total_bytes
    again = manager.connect("alice", now=5.0)
    assert again is first
    assert manager.handshakes_performed == 1
    # A cached connect moves zero bytes: no re-quote, no key exchange.
    assert link.total_bytes == bytes_after_handshake
    assert first.established_at == 0.0


def test_each_tenant_gets_its_own_keyed_channel(enclave):
    manager = SessionManager(enclave, rng=np.random.default_rng(1))
    alice = manager.connect("alice")
    bob = manager.connect("bob")
    assert manager.handshakes_performed == 2
    assert sorted(manager.active_tenants) == ["alice", "bob"]
    envelope = alice.encrypt_request(np.arange(6.0))
    # Bob's enclave endpoint holds a different session key: the AEAD tag
    # cannot verify, so cross-tenant envelopes are rejected.
    with pytest.raises(CommunicationError):
        bob.decrypt_request(envelope)


def test_request_and_response_roundtrip(enclave):
    manager = SessionManager(enclave, rng=np.random.default_rng(2))
    session = manager.connect("alice")
    x = np.random.default_rng(3).normal(size=(16,))
    recovered = session.decrypt_request(session.encrypt_request(x))
    assert np.array_equal(recovered, x)
    assert session.requests_served == 1
    logits = np.array([0.1, 2.5, -1.0])
    assert np.array_equal(
        session.decrypt_response(session.encrypt_response(logits)), logits
    )


def test_wrong_enclave_identity_is_refused():
    rogue = Enclave(code_identity="trojaned-enclave", seed=0)
    manager = SessionManager(
        rogue, expected_code_identity="darknight-enclave-v1"
    )
    with pytest.raises(AttestationError):
        manager.connect("alice")
    assert manager.handshakes_performed == 0
    assert manager.active_tenants == []
