"""Tests for virtual-batch partitioning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.masking import iter_virtual_batches, n_virtual_batches


def test_even_split():
    batch = np.arange(12).reshape(6, 2)
    vbs = list(iter_virtual_batches(batch, 2))
    assert len(vbs) == 3
    for vb in vbs:
        assert vb.n_real == 2
        assert not vb.is_padded
    assert np.array_equal(np.concatenate([vb.data for vb in vbs]), batch)


def test_ragged_tail_padded_with_zeros():
    batch = np.ones((5, 3))
    vbs = list(iter_virtual_batches(batch, 2))
    assert len(vbs) == 3
    tail = vbs[-1]
    assert tail.n_real == 1
    assert tail.is_padded
    assert np.all(tail.data[1:] == 0)
    assert tail.indices == (4,)


def test_indices_track_parent_positions():
    batch = np.arange(7)
    vbs = list(iter_virtual_batches(batch, 3))
    assert [vb.indices for vb in vbs] == [(0, 1, 2), (3, 4, 5), (6,)]


def test_k_one_degenerates_to_per_sample():
    vbs = list(iter_virtual_batches(np.arange(3), 1))
    assert len(vbs) == 3
    assert all(not vb.is_padded for vb in vbs)


def test_validation():
    with pytest.raises(ConfigurationError):
        list(iter_virtual_batches(np.arange(4), 0))
    with pytest.raises(ConfigurationError):
        list(iter_virtual_batches(np.empty((0, 2)), 2))
    with pytest.raises(ConfigurationError):
        n_virtual_batches(0, 2)
    with pytest.raises(ConfigurationError):
        n_virtual_batches(4, 0)


def test_n_virtual_batches():
    assert n_virtual_batches(128, 4) == 32
    assert n_virtual_batches(5, 2) == 3
    assert n_virtual_batches(1, 8) == 1
