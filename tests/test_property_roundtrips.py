"""Composed property tests: the full masked pipeline as one invariant.

The unit suites pin each stage; these hypothesis tests compose them the way
the runtime does and assert the end-to-end contracts:

* quantize -> mask -> GPU bilinear -> decode -> dequantize equals the
  quantized float reference *bit for bit*, for arbitrary shapes, K, M and
  value ranges (with dynamic normalisation absorbing the range);
* the sealed Algorithm-2 aggregation is a homomorphism: sum of parts equals
  the whole, for arbitrary shard counts and shapes;
* the EPC model's accounting invariants survive arbitrary operation
  sequences.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.enclave import Enclave, EpcModel
from repro.errors import EnclaveError
from repro.fieldmath import FieldRng, PrimeField, field_matmul
from repro.masking import CoefficientSet, ForwardDecoder, ForwardEncoder
from repro.quantization import DynamicNormalizer, QuantizationConfig
from repro.runtime import LargeBatchAggregator


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    k=st.integers(1, 3),
    m=st.integers(1, 2),
    features=st.integers(2, 10),
    out_features=st.integers(1, 5),
    magnitude=st.floats(0.1, 50.0),
    seed=st.integers(0, 10_000),
)
def test_full_masked_linear_pipeline_is_exact(k, m, features, out_features, magnitude, seed):
    """Masked result == quantized float reference, any shape/range/K/M."""
    field = PrimeField()
    frng = FieldRng(field, seed)
    npr = np.random.default_rng(seed)
    quantizer = QuantizationConfig(field=field)
    normalizer = DynamicNormalizer()

    x = npr.normal(scale=magnitude, size=(k, features))
    w = npr.normal(scale=magnitude, size=(features, out_features))
    xs, xn = normalizer.normalize(x)
    ws, wn = normalizer.normalize(w)
    x_q = quantizer.quantize(xs)
    w_q = quantizer.quantize(ws)

    coeffs = CoefficientSet.generate(frng, k=k, m=m)
    encoded = ForwardEncoder(coeffs, frng).encode(x_q)
    gpu_outputs = np.stack(
        [field_matmul(field, s.reshape(1, -1), w_q).ravel() for s in encoded.shares]
    )
    decoded = ForwardDecoder(coeffs).decode(gpu_outputs)
    result = quantizer.dequantize_product(decoded) * (xn.factor * wn.factor)

    x_signed = field.to_signed(x_q).astype(np.float64)
    w_signed = field.to_signed(w_q).astype(np.float64)
    reference = (
        np.floor(x_signed @ w_signed / quantizer.scale + 0.5)
        / quantizer.scale
        * (xn.factor * wn.factor)
    )
    assert np.array_equal(result, reference)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_updates=st.integers(1, 5),
    n_shards=st.integers(1, 6),
    size=st.integers(1, 40),
    seed=st.integers(0, 10_000),
)
def test_sealed_aggregation_is_exact_sum(n_updates, n_shards, size, seed):
    """Algorithm 2 over any shapes/shard counts equals the direct sum."""
    enclave = Enclave(seed=seed)
    agg = LargeBatchAggregator(enclave, n_shards=n_shards)
    npr = np.random.default_rng(seed)
    updates = [npr.normal(size=(size,)) for _ in range(n_updates)]
    for i, update in enumerate(updates):
        agg.add_update(f"vb{i}", update)
    total = agg.aggregate([f"vb{i}" for i in range(n_updates)])
    assert np.allclose(total, np.sum(updates, axis=0), atol=1e-12)
    assert enclave.untrusted_store.keys() == []


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 40), min_size=1, max_size=12),
    usable=st.integers(10, 80),
)
def test_epc_accounting_invariants(sizes, usable):
    """Resident never negative, peak is monotone, overflow consistent."""
    epc = EpcModel(usable_bytes=usable)
    live = {}
    peak_seen = 0
    for i, size in enumerate(sizes):
        epc.allocate(f"a{i}", size)
        live[f"a{i}"] = size
        peak_seen = max(peak_seen, sum(live.values()))
        assert epc.resident_bytes == sum(live.values())
        assert epc.peak_bytes == peak_seen
        assert epc.overflow_bytes == max(0, epc.resident_bytes - usable)
        if i % 2 == 1:
            tag, _ = live.popitem()
            epc.free(tag)
            assert epc.resident_bytes == sum(live.values())
    assert epc.stats.paged_out_bytes >= 0
    assert epc.stats.paged_in_bytes >= 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), shape=st.tuples(st.integers(1, 6), st.integers(1, 6)))
def test_seal_unseal_identity_for_any_array(seed, shape):
    """Sealing round-trips arbitrary float arrays exactly."""
    enclave = Enclave(seed=seed)
    arr = np.random.default_rng(seed).normal(size=shape)
    enclave.seal_and_evict("blob", arr)
    assert np.array_equal(enclave.reload_and_unseal("blob"), arr)


def test_enclave_fit_check_consistent_with_epc():
    enclave = Enclave(epc=EpcModel(usable_bytes=100), seed=0)
    enclave.require_fits(100, "exactly fits")
    with pytest.raises(EnclaveError):
        enclave.require_fits(101, "one byte too many")
